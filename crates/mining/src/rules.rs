//! Rule derivation — the paper's second subproblem.
//!
//! From every large itemset `X` and proper non-empty subset `Y ⊂ X`, the
//! rule `(X−Y) ⇒ Y` is emitted when its confidence
//! `sup(X) / sup(X−Y)` reaches the minimum. Rules whose consequent
//! contains an ancestor of an antecedent item (or vice versa: `x ⇒
//! ancestor(x)` has confidence 100% by construction) are redundant and
//! dropped — though with taxonomy-pruned candidates they cannot arise.
//!
//! As the [SA95] extension, [`prune_uninteresting`] implements the
//! **R-interesting** filter: a rule is kept only if its support is at
//! least `R` times what its *closest ancestor rule* predicts (the
//! ancestor rule's support scaled by the descendants' share of their
//! ancestors), removing rules that merely restate a generalization.

use crate::report::MiningOutput;
use gar_taxonomy::Taxonomy;
use gar_types::{FxHashMap, ItemId, Itemset};

/// One association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// `X − Y`.
    pub antecedent: Itemset,
    /// `Y`.
    pub consequent: Itemset,
    /// `sup(X)` as an absolute transaction count.
    pub support_count: u64,
    /// `sup(X)` as a fraction of the database.
    pub support: f64,
    /// `sup(X) / sup(X−Y)`.
    pub confidence: f64,
}

impl Rule {
    /// The union `X = antecedent ∪ consequent`.
    pub fn itemset(&self) -> Itemset {
        self.antecedent.union(&self.consequent)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} => {}  (sup {:.2}%, conf {:.1}%)",
            self.antecedent,
            self.consequent,
            self.support * 100.0,
            self.confidence * 100.0
        )
    }
}

/// Derives the rules of a single large itemset `x` into `out` — the unit
/// of work [`crate::parallel::rules::derive_rules_parallel`] distributes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn derive_rules_for_itemset(
    x: &Itemset,
    sup_x: u64,
    support: &FxHashMap<Itemset, u64>,
    num_transactions: u64,
    min_confidence: f64,
    tax: Option<&Taxonomy>,
    out: &mut Vec<Rule>,
) {
    let n = num_transactions.max(1) as f64;
    let k = x.len();
    // Every non-empty proper subset Y, via bitmask over the members.
    for mask in 1..(1u32 << k) - 1 {
        let mut antecedent = Vec::new();
        let mut consequent = Vec::new();
        for (i, &it) in x.items().iter().enumerate() {
            if mask & (1 << i) != 0 {
                consequent.push(it);
            } else {
                antecedent.push(it);
            }
        }
        let antecedent = Itemset::from_sorted(antecedent);
        let consequent = Itemset::from_sorted(consequent);
        let Some(&sup_ante) = support.get(&antecedent) else {
            // Apriori closure guarantees presence; a miss means the
            // output was truncated by max_pass — skip quietly.
            continue;
        };
        let confidence = sup_x as f64 / sup_ante as f64;
        if confidence < min_confidence {
            continue;
        }
        if let Some(t) = tax {
            let redundant = consequent
                .items()
                .iter()
                .any(|&c| antecedent.items().iter().any(|&a| t.is_ancestor(c, a)));
            if redundant {
                continue;
            }
        }
        out.push(Rule {
            antecedent,
            consequent,
            support_count: sup_x,
            support: sup_x as f64 / n,
            confidence,
        });
    }
}

/// Canonical presentation order: confidence desc, support desc, then the
/// rule's itemsets. Shared by the sequential and parallel derivers so
/// their outputs compare equal.
pub(crate) fn sort_rules(rules: &mut [Rule]) {
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then_with(|| b.support_count.cmp(&a.support_count))
            .then_with(|| {
                (a.antecedent.clone(), a.consequent.clone())
                    .cmp(&(b.antecedent.clone(), b.consequent.clone()))
            })
    });
}

/// Canonical *storage* order: sorted by `(antecedent, consequent)` item
/// ids, exact duplicates removed. Unlike [`sort_rules`] (a presentation
/// order keyed on floating-point confidence), this order depends only on
/// the item ids, so the same rule set serializes to the same bytes no
/// matter which algorithm or node count produced it — the invariant the
/// persisted rule store's determinism guarantee rests on.
pub fn canonicalize_rules(rules: &mut Vec<Rule>) {
    rules.sort_by(|a, b| {
        a.antecedent
            .cmp(&b.antecedent)
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules.dedup_by(|a, b| a.antecedent == b.antecedent && a.consequent == b.consequent);
}

/// Derives every rule meeting `min_confidence` from the mined large
/// itemsets. With a taxonomy, rules whose consequent holds an ancestor of
/// an antecedent item are dropped as redundant.
pub fn derive_rules(
    output: &MiningOutput,
    min_confidence: f64,
    tax: Option<&Taxonomy>,
) -> Vec<Rule> {
    assert!((0.0..=1.0).contains(&min_confidence));
    let support = output.support_map();
    let mut rules = Vec::new();
    // lint:allow(det-taint): each itemset derives its rules
    // independently and `sort_rules` imposes a total order on the
    // combined output, so visit order cannot leak into the report.
    for (x, &sup_x) in support.iter().filter(|(s, _)| s.len() >= 2) {
        derive_rules_for_itemset(
            x,
            sup_x,
            &support,
            output.num_transactions,
            min_confidence,
            tax,
            &mut rules,
        );
    }
    sort_rules(&mut rules);
    rules
}

/// The closest ancestor itemsets of `x`: every itemset obtained by
/// replacing exactly one member with its direct parent (deduplicated,
/// same-size only).
fn parent_itemsets(x: &Itemset, tax: &Taxonomy) -> Vec<Itemset> {
    let mut out = Vec::new();
    for (i, &it) in x.items().iter().enumerate() {
        if let Some(p) = tax.parent(it) {
            let mut items: Vec<ItemId> = x.items().to_vec();
            items[i] = p;
            let set = Itemset::from_unsorted(items);
            if set.len() == x.len() {
                out.push(set);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// [SA95] R-interestingness: keep a rule only when its support is at least
/// `r` times the support *expected* from each closest ancestor rule.
///
/// For an ancestor rule `X' ⇒ Y'` (one item generalized one level), the
/// expected support of the descendant rule is
/// `sup(X' ∪ Y') × Π sup(z_i) / sup(z'_i)` over the specialized items —
/// i.e. the ancestor association diluted by the descendant's share. Rules
/// with no mined ancestor rule are kept unconditionally.
pub fn prune_uninteresting(
    rules: &[Rule],
    output: &MiningOutput,
    tax: &Taxonomy,
    r: f64,
) -> Vec<Rule> {
    assert!(r >= 1.0, "R must be >= 1");
    let support = output.support_map();
    // Single-item supports (for the dilution ratio).
    let item_sup = |it: ItemId| -> Option<u64> { support.get(&Itemset::singleton(it)).copied() };
    let rule_index: FxHashMap<(Itemset, Itemset), &Rule> = rules
        .iter()
        .map(|rl| ((rl.antecedent.clone(), rl.consequent.clone()), rl))
        .collect();

    let mut kept = Vec::new();
    'rules: for rule in rules {
        let x = rule.itemset();
        for anc_x in parent_itemsets(&x, tax) {
            let Some(&anc_sup) = support.get(&anc_x) else {
                continue;
            };
            // The specialized position: the item of x missing from anc_x.
            let specialized: Vec<(ItemId, ItemId)> = x
                .items()
                .iter()
                .filter(|it| !anc_x.contains(**it))
                .filter_map(|&child| tax.parent(child).map(|p| (child, p)))
                .collect();
            let mut ratio = 1.0;
            for (child, parent) in &specialized {
                match (item_sup(*child), item_sup(*parent)) {
                    (Some(c), Some(p)) if p > 0 => ratio *= c as f64 / p as f64,
                    _ => continue,
                }
            }
            let expected = anc_sup as f64 * ratio;
            // Only prune against ancestor rules that were themselves
            // derived (same antecedent/consequent shape, generalized).
            // lint:allow(det-taint): existence check — `any` over an
            // order-independent pure predicate.
            let anc_rule_exists = rule_index.keys().any(|(a, c)| {
                a.union(c) == anc_x
                    && a.len() == rule.antecedent.len()
                    && c.len() == rule.consequent.len()
            });
            if anc_rule_exists && (rule.support_count as f64) < r * expected {
                continue 'rules;
            }
        }
        kept.push(rule.clone());
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use crate::sequential::cumulate;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    /// clothes(0) -> outerwear(1) -> jackets(3), ski pants(4);
    /// clothes(0) -> shirts(2); footwear(5) -> shoes(6), boots(7).
    fn sa95() -> (Taxonomy, MiningOutput) {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        let tax = b.build().unwrap();
        let txns = vec![
            ids(&[2]),
            ids(&[3, 7]),
            ids(&[4, 7]),
            ids(&[6]),
            ids(&[6]),
            ids(&[3]),
        ];
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.3)).unwrap();
        (tax, out)
    }

    #[test]
    fn derives_sa95_example_rules() {
        let (tax, out) = sa95();
        let rules = derive_rules(&out, 0.6, Some(&tax));
        // [SA95]: "Outerwear => Hiking Boots" holds with 2/3 confidence
        // and 33% support.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == iset![1] && r.consequent == iset![7])
            .expect("outerwear => hiking boots");
        assert_eq!(rule.support_count, 2);
        assert!((rule.confidence - 2.0 / 3.0).abs() < 1e-9);
        // "Jackets => Hiking Boots" (1/2 confidence) must be excluded at 60%.
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == iset![3] && r.consequent == iset![7]));
    }

    #[test]
    fn hundred_percent_confidence_rules() {
        let (tax, out) = sa95();
        let rules = derive_rules(&out, 1.0, Some(&tax));
        // Hiking boots => outerwear: both boot transactions have outerwear.
        assert!(rules
            .iter()
            .any(|r| r.antecedent == iset![7] && r.consequent == iset![1]));
    }

    #[test]
    fn min_confidence_zero_emits_all_splits() {
        let (tax, out) = sa95();
        let rules = derive_rules(&out, 0.0, Some(&tax));
        // Each large 2-itemset contributes both directions.
        let l2 = out.large(2).unwrap().itemsets.len();
        assert_eq!(rules.len(), 2 * l2);
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let (tax, out) = sa95();
        let rules = derive_rules(&out, 0.0, Some(&tax));
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn redundant_ancestor_rules_filtered() {
        // Without candidate-level pruning (flat output injected), the
        // consequent-ancestor filter must drop x => ancestor(x).
        let mut b = TaxonomyBuilder::new(3);
        b.edge(1, 0).unwrap();
        let tax = b.build().unwrap();
        let out = MiningOutput {
            algorithm: crate::params::Algorithm::Cumulate,
            num_transactions: 10,
            min_support_count: 1,
            passes: vec![
                crate::report::LargePass {
                    k: 1,
                    itemsets: vec![(iset![0], 5), (iset![1], 5)],
                },
                crate::report::LargePass {
                    k: 2,
                    itemsets: vec![(iset![0, 1], 5)],
                },
            ],
        };
        let rules = derive_rules(&out, 0.0, Some(&tax));
        // {1} => {0} (child => parent) is redundant; {0} => {1} is not.
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == iset![1] && r.consequent == iset![0]));
        assert!(rules
            .iter()
            .any(|r| r.antecedent == iset![0] && r.consequent == iset![1]));
    }

    #[test]
    fn canonicalize_sorts_by_items_and_dedups() {
        let mk = |a: Itemset, c: Itemset, conf: f64| Rule {
            antecedent: a,
            consequent: c,
            support_count: 2,
            support: 0.5,
            confidence: conf,
        };
        let mut rules = vec![
            mk(iset![3], iset![7], 0.9),
            mk(iset![1], iset![7], 0.5),
            mk(iset![3], iset![7], 0.9), // duplicate
            mk(iset![1], iset![4], 0.7),
        ];
        canonicalize_rules(&mut rules);
        let keys: Vec<_> = rules
            .iter()
            .map(|r| (r.antecedent.clone(), r.consequent.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (iset![1], iset![4]),
                (iset![1], iset![7]),
                (iset![3], iset![7]),
            ]
        );
    }

    #[test]
    fn canonical_order_is_independent_of_input_order() {
        let (tax, out) = sa95();
        let mut a = derive_rules(&out, 0.0, Some(&tax));
        let mut b = a.clone();
        b.reverse();
        canonicalize_rules(&mut a);
        canonicalize_rules(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let r = Rule {
            antecedent: iset![1],
            consequent: iset![7],
            support_count: 2,
            support: 1.0 / 3.0,
            confidence: 2.0 / 3.0,
        };
        assert_eq!(r.to_string(), "{1} => {7}  (sup 33.33%, conf 66.7%)");
    }

    #[test]
    fn parent_itemsets_single_generalization() {
        let (tax, _) = sa95();
        let ps = parent_itemsets(&iset![3, 7], &tax);
        assert_eq!(ps, vec![iset![1, 7], iset![3, 5]]);
    }

    #[test]
    fn r_interesting_keeps_rules_beating_expectation() {
        // Ancestor rule {0}=>{4} has support 8/10; children 1 and 2 split
        // the parent 0 evenly. Descendant rule {1}=>{4} with support 7
        // (>> expected 4) is interesting at R=1.5; {2}=>{4} with support 1
        // (< 6) is not.
        let mut b = TaxonomyBuilder::new(5);
        b.edge(1, 0).unwrap();
        b.edge(2, 0).unwrap();
        let tax = b.build().unwrap();
        let out = MiningOutput {
            algorithm: crate::params::Algorithm::Cumulate,
            num_transactions: 10,
            min_support_count: 1,
            passes: vec![
                crate::report::LargePass {
                    k: 1,
                    itemsets: vec![(iset![0], 10), (iset![1], 5), (iset![2], 5), (iset![4], 8)],
                },
                crate::report::LargePass {
                    k: 2,
                    itemsets: vec![(iset![0, 4], 8), (iset![1, 4], 7), (iset![2, 4], 1)],
                },
            ],
        };
        let rules = derive_rules(&out, 0.0, Some(&tax));
        let kept = prune_uninteresting(&rules, &out, &tax, 1.5);
        assert!(kept
            .iter()
            .any(|r| r.antecedent == iset![1] && r.consequent == iset![4]));
        assert!(!kept
            .iter()
            .any(|r| r.antecedent == iset![2] && r.consequent == iset![4]));
        // The ancestor rule itself has no mined ancestor: always kept.
        assert!(kept
            .iter()
            .any(|r| r.antecedent == iset![0] && r.consequent == iset![4]));
    }
}
