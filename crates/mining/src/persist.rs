//! Persistence of mining outputs.
//!
//! Format (little-endian): magic `GOUT`, `u32` version, algorithm name
//! (`u32` length + UTF-8), `u64` transaction count, `u64` minimum-support
//! count, `u32` pass count, then per pass a `u32 k` and a
//! [`crate::wire::encode_counted`] block prefixed by its `u32` byte
//! length. Used by the CLI so a mine step and a rules step can run as
//! separate processes.

use crate::params::Algorithm;
use crate::report::{LargePass, MiningOutput};
use crate::wire;
use gar_types::{Error, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GOUT";
const VERSION: u32 = 1;

/// Writes a mining output to `path`.
pub fn save_output(output: &MiningOutput, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)
        .map_err(|e| Error::io(format!("creating output file {}", path.display()), e))?;
    let mut w = BufWriter::new(file);
    let io_err = |e| Error::io(format!("writing output file {}", path.display()), e);

    w.write_all(MAGIC).map_err(io_err)?;
    w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    let name = output.algorithm.name().as_bytes();
    w.write_all(&(name.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    w.write_all(name).map_err(io_err)?;
    w.write_all(&output.num_transactions.to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&output.min_support_count.to_le_bytes())
        .map_err(io_err)?;
    w.write_all(&(output.passes.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for pass in &output.passes {
        w.write_all(&(pass.k as u32).to_le_bytes())
            .map_err(io_err)?;
        let block = wire::encode_counted(pass.k, &pass.itemsets);
        w.write_all(&(block.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&block).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Reads a mining output from `path`.
pub fn load_output(path: impl AsRef<Path>) -> Result<MiningOutput> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| Error::io(format!("opening output file {}", path.display()), e))?;
    let mut r = BufReader::new(file);
    let io_err = |e| Error::io(format!("reading output file {}", path.display()), e);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!(
            "{} is not a mining-output file (bad magic)",
            path.display()
        )));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u32buf).map_err(io_err)?;
    if u32::from_le_bytes(u32buf) != VERSION {
        return Err(Error::Corrupt("unsupported output file version".into()));
    }
    r.read_exact(&mut u32buf).map_err(io_err)?;
    let name_len = u32::from_le_bytes(u32buf) as usize;
    if name_len > 64 {
        return Err(Error::Corrupt("implausible algorithm name length".into()));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name).map_err(io_err)?;
    let name = String::from_utf8(name)
        .map_err(|_| Error::Corrupt("algorithm name is not UTF-8".into()))?;
    let algorithm = algorithm_by_name(&name)?;

    r.read_exact(&mut u64buf).map_err(io_err)?;
    let num_transactions = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf).map_err(io_err)?;
    let min_support_count = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u32buf).map_err(io_err)?;
    let num_passes = u32::from_le_bytes(u32buf) as usize;
    if num_passes > 64 {
        return Err(Error::Corrupt("implausible pass count".into()));
    }

    let mut passes = Vec::with_capacity(num_passes);
    for _ in 0..num_passes {
        r.read_exact(&mut u32buf).map_err(io_err)?;
        let k = u32::from_le_bytes(u32buf) as usize;
        r.read_exact(&mut u32buf).map_err(io_err)?;
        let block_len = u32::from_le_bytes(u32buf) as usize;
        let mut block = vec![0u8; block_len];
        r.read_exact(&mut block).map_err(io_err)?;
        let itemsets = wire::decode_counted(&block)?;
        if itemsets.iter().any(|(s, _)| s.len() != k) {
            return Err(Error::Corrupt(format!("pass {k} holds non-{k}-itemsets")));
        }
        passes.push(LargePass { k, itemsets });
    }
    Ok(MiningOutput {
        algorithm,
        num_transactions,
        min_support_count,
        passes,
    })
}

/// Resolves an algorithm from its paper name (case-insensitive).
pub fn algorithm_by_name(name: &str) -> Result<Algorithm> {
    let all = [
        Algorithm::Apriori,
        Algorithm::Cumulate,
        Algorithm::Npgm,
        Algorithm::Hpgm,
        Algorithm::HHpgm,
        Algorithm::HHpgmTgd,
        Algorithm::HHpgmPgd,
        Algorithm::HHpgmFgd,
        Algorithm::FpGrowth,
    ];
    all.into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            Error::InvalidConfig(format!(
                "unknown algorithm '{name}' (expected one of {})",
                all.map(|a| a.name()).join(", ")
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn sample() -> MiningOutput {
        MiningOutput {
            algorithm: Algorithm::HHpgmFgd,
            num_transactions: 1234,
            min_support_count: 12,
            passes: vec![
                LargePass {
                    k: 1,
                    itemsets: vec![(iset![1], 100), (iset![2], 50)],
                },
                LargePass {
                    k: 2,
                    itemsets: vec![(iset![1, 2], 30)],
                },
            ],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gar-persist-{}-{}", std::process::id(), name))
    }

    #[test]
    fn round_trip() {
        let out = sample();
        let path = tmp("roundtrip");
        save_output(&out, &path).unwrap();
        let loaded = load_output(&path).unwrap();
        assert_eq!(loaded.algorithm, out.algorithm);
        assert_eq!(loaded.num_transactions, 1234);
        assert_eq!(loaded.min_support_count, 12);
        assert_eq!(loaded.passes.len(), 2);
        for (a, b) in loaded.all_large().zip(out.all_large()) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_output_round_trips() {
        let out = MiningOutput {
            algorithm: Algorithm::Cumulate,
            num_transactions: 0,
            min_support_count: 1,
            passes: vec![],
        };
        let path = tmp("empty");
        save_output(&out, &path).unwrap();
        let loaded = load_output(&path).unwrap();
        assert_eq!(loaded.num_large(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"XXXX\x01\x00\x00\x00").unwrap();
        assert!(load_output(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_rejected() {
        let path = tmp("trunc");
        save_output(&sample(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load_output(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn algorithm_names_resolve() {
        assert_eq!(
            algorithm_by_name("h-hpgm-fgd").unwrap(),
            Algorithm::HHpgmFgd
        );
        assert_eq!(algorithm_by_name("NPGM").unwrap(), Algorithm::Npgm);
        assert_eq!(algorithm_by_name("Cumulate").unwrap(), Algorithm::Cumulate);
        assert!(algorithm_by_name("magic").is_err());
    }
}
