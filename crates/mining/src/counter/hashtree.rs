//! The hash-tree candidate counter.

use super::{CandidateCounter, CountOutcome};
use gar_types::{FxHashMap, ItemId, Itemset};

/// One node of the candidate tree: hashed fan-out on the next item of the
/// (sorted) candidate, with an optional terminal at this depth.
///
/// This is the prefix-tree formulation of [RR94]'s hash tree: interior
/// levels fan out by hashing the item (here: an Fx map keyed by the item
/// itself, the degenerate perfect-hash case), and counting walks the
/// transaction and tree together so subsets that match no candidate prefix
/// are never enumerated.
#[derive(Default)]
struct TreeNode {
    children: FxHashMap<ItemId, TreeNode>,
    /// Index into the dense counts vector when a candidate ends here.
    terminal: Option<u32>,
}

/// Candidate counter backed by the hash tree.
pub struct HashTreeCounter {
    k: usize,
    root: TreeNode,
    itemsets: Vec<Itemset>,
    counts: Vec<u64>,
}

impl HashTreeCounter {
    /// Builds the tree over `candidates` (each of size `k`).
    pub fn new(k: usize, candidates: &[Itemset]) -> HashTreeCounter {
        let mut root = TreeNode::default();
        let mut itemsets = Vec::with_capacity(candidates.len());
        for (i, c) in candidates.iter().enumerate() {
            debug_assert_eq!(c.len(), k);
            let mut node = &mut root;
            for &it in c.items() {
                node = node.children.entry(it).or_default();
            }
            debug_assert!(node.terminal.is_none(), "duplicate candidate {c:?}");
            node.terminal = Some(i as u32);
            itemsets.push(c.clone());
        }
        HashTreeCounter {
            k,
            root,
            itemsets,
            counts: vec![0; candidates.len()],
        }
    }

    fn walk(node: &TreeNode, t: &[ItemId], counts: &mut [u64], out: &mut CountOutcome) {
        if let Some(idx) = node.terminal {
            counts[idx as usize] += 1;
            out.hits += 1;
        }
        if node.children.is_empty() {
            return;
        }
        for (i, &it) in t.iter().enumerate() {
            out.work += 1;
            if let Some(child) = node.children.get(&it) {
                Self::walk(child, &t[i + 1..], counts, out);
            }
        }
    }
}

impl CandidateCounter for HashTreeCounter {
    fn num_candidates(&self) -> usize {
        self.itemsets.len()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn probe(&mut self, itemset: &[ItemId]) -> CountOutcome {
        debug_assert_eq!(itemset.len(), self.k);
        let mut out = CountOutcome { work: 1, hits: 0 };
        let mut node = &self.root;
        for it in itemset {
            match node.children.get(it) {
                Some(c) => node = c,
                None => return out,
            }
        }
        if let Some(idx) = node.terminal {
            self.counts[idx as usize] += 1;
            out.hits = 1;
        }
        out
    }

    fn count_transaction(&mut self, t: &[ItemId]) -> CountOutcome {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted txn");
        let mut out = CountOutcome::default();
        if t.len() < self.k || self.itemsets.is_empty() {
            return out;
        }
        Self::walk(&self.root, t, &mut self.counts, &mut out);
        out
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.counts.len());
        self.counts.copy_from_slice(counts);
    }

    fn into_counts(self: Box<Self>) -> Vec<(Itemset, u64)> {
        self.itemsets.into_iter().zip(self.counts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn shared_prefixes_share_paths() {
        let cands = vec![iset![1, 2, 3], iset![1, 2, 4]];
        let mut c = HashTreeCounter::new(3, &cands);
        let out = c.count_transaction(&ids(&[1, 2, 3, 4]));
        assert_eq!(out.hits, 2);
        assert_eq!(c.counts(), &[1, 1]);
    }

    #[test]
    fn probe_walks_the_exact_path() {
        let mut c = HashTreeCounter::new(2, &[iset![3, 7]]);
        assert_eq!(c.probe(&ids(&[3, 7])).hits, 1);
        assert_eq!(c.probe(&ids(&[3, 8])).hits, 0);
        assert_eq!(c.probe(&ids(&[7, 3])).hits, 0); // unsorted = not a path
        assert_eq!(c.counts(), &[1]);
    }

    #[test]
    fn no_match_means_no_hits_but_some_walk_work() {
        let mut c = HashTreeCounter::new(2, &[iset![100, 200]]);
        let out = c.count_transaction(&ids(&[1, 2, 3]));
        assert_eq!(out.hits, 0);
        assert!(out.work > 0);
    }

    #[test]
    fn k1_terminals_at_depth_one() {
        let mut c = HashTreeCounter::new(1, &[iset![5], iset![9]]);
        c.count_transaction(&ids(&[5, 6, 7]));
        assert_eq!(c.counts(), &[1, 0]);
    }
}
