//! The hash-tree candidate counter, arena-backed.
//!
//! This is the prefix-tree formulation of [RR94]'s hash tree: interior
//! levels fan out on the next item of the (sorted) candidate, and counting
//! walks the transaction and tree together so subsets that match no
//! candidate prefix are never enumerated.
//!
//! The tree lives in one flat arena (CSR layout) instead of boxed
//! per-node hash maps: all nodes share three contiguous arrays
//! (`edge_off`/`edge_items`/`edge_child`) indexed by u32 handles, with
//! terminals in a fourth. Fan-out lookup is a dense table at the root
//! (where the fan-out is widest) and a binary search over the node's
//! sorted edge slice below it. Probe semantics and the `work`/`hits`
//! meters are identical to the pointer-walking formulation (the proptests
//! below pin that), but a walk now touches a handful of cache lines
//! instead of chasing one heap allocation per level per branch.

use super::{ArenaStats, CandidateCounter, CountOutcome};
use gar_types::{ItemId, Itemset};

/// Sentinel for "no node" / "no terminal".
const NONE: u32 = u32::MAX;

/// Candidate counter backed by the arena hash tree.
pub struct HashTreeCounter {
    k: usize,
    /// CSR: node `n`'s edges are `edge_items[edge_off[n]..edge_off[n+1]]`,
    /// sorted by item, with parallel child handles in `edge_child`.
    edge_off: Vec<u32>,
    edge_items: Vec<ItemId>,
    edge_child: Vec<u32>,
    /// Per-node candidate index when a candidate ends there (`NONE` else).
    terminal: Vec<u32>,
    /// Dense root fan-out: child handle of root edge on item `i` lives at
    /// `root_table[i - root_base]`. The root has the widest fan-out, so a
    /// direct load beats a binary search exactly where it matters most.
    root_base: u32,
    root_table: Vec<u32>,
    itemsets: Vec<Itemset>,
    counts: Vec<u64>,
}

/// Build-time node representation (per-node edge vec, flattened away).
struct BuildNode {
    /// Sorted by item.
    edges: Vec<(ItemId, u32)>,
    terminal: u32,
}

impl Default for BuildNode {
    fn default() -> Self {
        BuildNode {
            edges: Vec::new(),
            terminal: NONE,
        }
    }
}

impl HashTreeCounter {
    /// Builds the tree over `candidates` (each of size `k`).
    pub fn new(k: usize, candidates: &[Itemset]) -> HashTreeCounter {
        let mut nodes: Vec<BuildNode> = vec![BuildNode {
            edges: Vec::new(),
            terminal: NONE,
        }];
        let mut itemsets = Vec::with_capacity(candidates.len());
        for (i, c) in candidates.iter().enumerate() {
            debug_assert_eq!(c.len(), k);
            let mut node = 0usize;
            for &it in c.items() {
                node = match nodes[node].edges.binary_search_by_key(&it, |e| e.0) {
                    Ok(pos) => nodes[node].edges[pos].1 as usize,
                    Err(pos) => {
                        let child = nodes.len() as u32;
                        nodes.push(BuildNode::default());
                        nodes[node].edges.insert(pos, (it, child));
                        child as usize
                    }
                };
            }
            debug_assert_eq!(nodes[node].terminal, NONE, "duplicate candidate {c:?}");
            nodes[node].terminal = i as u32;
            itemsets.push(c.clone());
        }

        // Flatten to CSR.
        let num_edges: usize = nodes.iter().map(|n| n.edges.len()).sum();
        let mut edge_off = Vec::with_capacity(nodes.len() + 1);
        let mut edge_items = Vec::with_capacity(num_edges);
        let mut edge_child = Vec::with_capacity(num_edges);
        let mut terminal = Vec::with_capacity(nodes.len());
        edge_off.push(0u32);
        for n in &nodes {
            for &(it, child) in &n.edges {
                edge_items.push(it);
                edge_child.push(child);
            }
            edge_off.push(edge_items.len() as u32);
            terminal.push(n.terminal);
        }

        // Dense root fan-out table.
        let root_edges = &nodes[0].edges;
        let (root_base, mut root_table) = match (root_edges.first(), root_edges.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => {
                (lo.raw(), vec![NONE; (hi.raw() - lo.raw() + 1) as usize])
            }
            _ => (0, Vec::new()),
        };
        for &(it, child) in root_edges {
            root_table[(it.raw() - root_base) as usize] = child;
        }

        HashTreeCounter {
            k,
            edge_off,
            edge_items,
            edge_child,
            terminal,
            root_base,
            root_table,
            itemsets,
            counts: vec![0; candidates.len()],
        }
    }

    /// Child handle of `node` along `it`, or `NONE`.
    #[inline]
    fn child(&self, node: u32, it: ItemId) -> u32 {
        if node == 0 {
            let idx = it.raw().wrapping_sub(self.root_base) as usize;
            return if idx < self.root_table.len() {
                self.root_table[idx]
            } else {
                NONE
            };
        }
        let lo = self.edge_off[node as usize] as usize;
        let hi = self.edge_off[node as usize + 1] as usize;
        match self.edge_items[lo..hi].binary_search(&it) {
            Ok(pos) => self.edge_child[lo + pos],
            Err(_) => NONE,
        }
    }

    /// Arena footprint, for the `counter.arena.*` obs series.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.terminal.len() as u64,
            edges: self.edge_items.len() as u64,
            bytes: (self.edge_off.len() * 4
                + self.edge_items.len() * 8
                + self.terminal.len() * 4
                + self.root_table.len() * 4) as u64,
        }
    }

    fn walk(&self, node: u32, t: &[ItemId], counts: &mut [u64], out: &mut CountOutcome) {
        let term = self.terminal[node as usize];
        if term != NONE {
            counts[term as usize] += 1;
            out.hits += 1;
        }
        let lo = self.edge_off[node as usize] as usize;
        let hi = self.edge_off[node as usize + 1] as usize;
        if lo == hi {
            return;
        }
        // One work unit per item considered at this node — the same meter
        // as a per-item child lookup, but matching is a two-pointer merge
        // (both the edge slice and the transaction are sorted).
        out.work += t.len() as u64;
        if node == 0 {
            // The root's dense fan-out table beats merging over its edges.
            for (i, &it) in t.iter().enumerate() {
                let idx = it.raw().wrapping_sub(self.root_base) as usize;
                if idx < self.root_table.len() {
                    let child = self.root_table[idx];
                    if child != NONE {
                        self.walk(child, &t[i + 1..], counts, out);
                    }
                }
            }
            return;
        }
        let mut e = lo;
        for (i, &it) in t.iter().enumerate() {
            while e < hi && self.edge_items[e] < it {
                e += 1;
            }
            if e == hi {
                break;
            }
            if self.edge_items[e] == it {
                self.walk(self.edge_child[e], &t[i + 1..], counts, out);
            }
        }
    }
}

impl CandidateCounter for HashTreeCounter {
    fn num_candidates(&self) -> usize {
        self.itemsets.len()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn probe(&mut self, itemset: &[ItemId]) -> CountOutcome {
        debug_assert_eq!(itemset.len(), self.k);
        let mut out = CountOutcome { work: 1, hits: 0 };
        let mut node = 0u32;
        for &it in itemset {
            node = self.child(node, it);
            if node == NONE {
                return out;
            }
        }
        let term = self.terminal[node as usize];
        if term != NONE {
            self.counts[term as usize] += 1;
            out.hits = 1;
        }
        out
    }

    fn count_transaction(&mut self, t: &[ItemId]) -> CountOutcome {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted txn");
        let mut out = CountOutcome::default();
        if t.len() < self.k || self.itemsets.is_empty() {
            return out;
        }
        let mut counts = std::mem::take(&mut self.counts);
        self.walk(0, t, &mut counts, &mut out);
        self.counts = counts;
        out
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.counts.len());
        self.counts.copy_from_slice(counts);
    }

    fn into_counts(self: Box<Self>) -> Vec<(Itemset, u64)> {
        self.itemsets.into_iter().zip(self.counts).collect()
    }

    fn arena_stats(&self) -> Option<ArenaStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn shared_prefixes_share_paths() {
        let cands = vec![iset![1, 2, 3], iset![1, 2, 4]];
        let mut c = HashTreeCounter::new(3, &cands);
        let out = c.count_transaction(&ids(&[1, 2, 3, 4]));
        assert_eq!(out.hits, 2);
        assert_eq!(c.counts(), &[1, 1]);
        // Shared prefix = shared arena path: 1 root + (1,2 spine) + 2 leaves.
        assert_eq!(c.stats().nodes, 5);
        assert_eq!(c.stats().edges, 4);
    }

    #[test]
    fn probe_walks_the_exact_path() {
        let mut c = HashTreeCounter::new(2, &[iset![3, 7]]);
        assert_eq!(c.probe(&ids(&[3, 7])).hits, 1);
        assert_eq!(c.probe(&ids(&[3, 8])).hits, 0);
        assert_eq!(c.probe(&ids(&[7, 3])).hits, 0); // unsorted = not a path
        assert_eq!(c.counts(), &[1]);
    }

    #[test]
    fn no_match_means_no_hits_but_some_walk_work() {
        let mut c = HashTreeCounter::new(2, &[iset![100, 200]]);
        let out = c.count_transaction(&ids(&[1, 2, 3]));
        assert_eq!(out.hits, 0);
        assert!(out.work > 0);
    }

    #[test]
    fn k1_terminals_at_depth_one() {
        let mut c = HashTreeCounter::new(1, &[iset![5], iset![9]]);
        c.count_transaction(&ids(&[5, 6, 7]));
        assert_eq!(c.counts(), &[1, 0]);
    }

    #[test]
    fn root_table_misses_outside_its_range() {
        // Root fan-out is dense over [2, 9]; items 0, 1, 10 fall outside.
        let mut c = HashTreeCounter::new(2, &[iset![2, 5], iset![9, 11]]);
        assert_eq!(c.probe(&ids(&[1, 5])).hits, 0);
        assert_eq!(c.probe(&ids(&[10, 11])).hits, 0);
        assert_eq!(c.probe(&ids(&[2, 5])).hits, 1);
        assert_eq!(c.probe(&ids(&[9, 11])).hits, 1);
    }

    #[test]
    fn empty_candidate_set_is_inert() {
        let mut c = HashTreeCounter::new(2, &[]);
        assert_eq!(
            c.count_transaction(&ids(&[1, 2, 3])),
            CountOutcome::default()
        );
        assert_eq!(c.stats().nodes, 1);
        assert_eq!(c.stats().edges, 0);
    }
}

#[cfg(test)]
mod proptests {
    //! The arena rewrite is pinned against the original pointer-walking
    //! implementation: identical counts, identical `work`/`hits` meters,
    //! for both `count_transaction` and `probe`, across random candidate
    //! sets and transactions.

    use super::*;
    use gar_types::FxHashMap;
    use proptest::prelude::*;

    /// The pre-arena implementation, kept verbatim as the oracle.
    #[derive(Default)]
    struct RefNode {
        children: FxHashMap<ItemId, RefNode>,
        terminal: Option<u32>,
    }

    struct RefTree {
        k: usize,
        root: RefNode,
        counts: Vec<u64>,
    }

    impl RefTree {
        fn new(k: usize, candidates: &[Itemset]) -> RefTree {
            let mut root = RefNode::default();
            for (i, c) in candidates.iter().enumerate() {
                let mut node = &mut root;
                for &it in c.items() {
                    node = node.children.entry(it).or_default();
                }
                node.terminal = Some(i as u32);
            }
            RefTree {
                k,
                root,
                counts: vec![0; candidates.len()],
            }
        }

        fn walk(node: &RefNode, t: &[ItemId], counts: &mut [u64], out: &mut CountOutcome) {
            if let Some(idx) = node.terminal {
                counts[idx as usize] += 1;
                out.hits += 1;
            }
            if node.children.is_empty() {
                return;
            }
            for (i, &it) in t.iter().enumerate() {
                out.work += 1;
                if let Some(child) = node.children.get(&it) {
                    Self::walk(child, &t[i + 1..], counts, out);
                }
            }
        }

        fn count_transaction(&mut self, t: &[ItemId]) -> CountOutcome {
            let mut out = CountOutcome::default();
            if t.len() < self.k || self.counts.is_empty() {
                return out;
            }
            Self::walk(&self.root, t, &mut self.counts, &mut out);
            out
        }

        fn probe(&mut self, itemset: &[ItemId]) -> CountOutcome {
            let mut out = CountOutcome { work: 1, hits: 0 };
            let mut node = &self.root;
            for it in itemset {
                match node.children.get(it) {
                    Some(c) => node = c,
                    None => return out,
                }
            }
            if let Some(idx) = node.terminal {
                self.counts[idx as usize] += 1;
                out.hits = 1;
            }
            out
        }
    }

    fn arb_itemsets(k: usize) -> impl Strategy<Value = Vec<Itemset>> {
        proptest::collection::btree_set(proptest::collection::btree_set(0u32..60, k..=k), 1..30)
            .prop_map(|sets| {
                sets.into_iter()
                    .map(|s| Itemset::from_unsorted(s.into_iter().map(ItemId).collect()))
                    .collect()
            })
    }

    proptest! {
        #[test]
        fn arena_matches_pointer_walk(
            k in 1usize..4,
            seed_cands in arb_itemsets(3),
            txns in proptest::collection::vec(
                proptest::collection::btree_set(0u32..60, 0..14), 1..16)
        ) {
            // Re-cut the generated 3-sets down to size k so one strategy
            // covers every depth.
            let cands: Vec<Itemset> = {
                let mut seen = std::collections::BTreeSet::new();
                seed_cands
                    .iter()
                    .map(|c| Itemset::from_sorted(c.items()[..k].to_vec()))
                    .filter(|c| seen.insert(c.clone()))
                    .collect()
            };
            let mut arena = HashTreeCounter::new(k, &cands);
            let mut reference = RefTree::new(k, &cands);
            for t in &txns {
                let t: Vec<ItemId> = t.iter().copied().map(ItemId).collect();
                let a = arena.count_transaction(&t);
                let r = reference.count_transaction(&t);
                prop_assert_eq!(a, r);
                if t.len() >= k {
                    let probe_set = &t[..k];
                    let a = arena.probe(probe_set);
                    let r = reference.probe(probe_set);
                    prop_assert_eq!(a, r);
                }
            }
            prop_assert_eq!(arena.counts(), reference.counts.as_slice());
        }

        // The H-HPGM family counts a transaction with one joint
        // transaction-and-tree walk; this pins that the walk increments
        // exactly the candidates a per-subset probe sweep would.
        #[test]
        fn joint_walk_counts_like_probing_every_subset(
            k in 1usize..4,
            seed_cands in arb_itemsets(3),
            txn in proptest::collection::btree_set(0u32..60, 0..14)
        ) {
            let cands: Vec<Itemset> = {
                let mut seen = std::collections::BTreeSet::new();
                seed_cands
                    .iter()
                    .map(|c| Itemset::from_sorted(c.items()[..k].to_vec()))
                    .filter(|c| seen.insert(c.clone()))
                    .collect()
            };
            let t: Vec<ItemId> = txn.iter().copied().map(ItemId).collect();
            let mut walked = HashTreeCounter::new(k, &cands);
            let walk_out = walked.count_transaction(&t);
            let mut probed = HashTreeCounter::new(k, &cands);
            let mut probe_hits = 0;
            let mut subset: Vec<ItemId> = Vec::with_capacity(k);
            fn subsets(
                t: &[ItemId],
                k: usize,
                subset: &mut Vec<ItemId>,
                f: &mut impl FnMut(&[ItemId]),
            ) {
                if subset.len() == k {
                    f(subset);
                    return;
                }
                for (i, &it) in t.iter().enumerate() {
                    subset.push(it);
                    subsets(&t[i + 1..], k, subset, f);
                    subset.pop();
                }
            }
            subsets(&t, k, &mut subset, &mut |s| {
                probe_hits += probed.probe(s).hits;
            });
            prop_assert_eq!(walked.counts(), probed.counts());
            prop_assert_eq!(walk_out.hits, probe_hits);
        }
    }
}
