//! The flat hash-map candidate counter.

use super::{CandidateCounter, CountOutcome};
use gar_types::{FxHashMap, ItemId, Itemset};

/// Candidate counter backed by one Fx hash map from itemset to a dense
/// count index. Counting a transaction enumerates its k-subsets and probes
/// each — the paper's "generate k-itemsets from t' and search the hash
/// table".
pub struct HashMapCounter {
    k: usize,
    index: FxHashMap<Box<[ItemId]>, u32>,
    itemsets: Vec<Itemset>,
    counts: Vec<u64>,
    /// Scratch for subset enumeration (reused across calls to avoid a
    /// per-subset allocation on the hot path).
    scratch: Vec<ItemId>,
}

impl HashMapCounter {
    /// Builds the counter over `candidates` (each of size `k`).
    pub fn new(k: usize, candidates: &[Itemset]) -> HashMapCounter {
        let mut index = FxHashMap::default();
        index.reserve(candidates.len());
        let mut itemsets = Vec::with_capacity(candidates.len());
        for (i, c) in candidates.iter().enumerate() {
            debug_assert_eq!(c.len(), k, "candidate {c:?} is not a {k}-itemset");
            let prev = index.insert(c.items().to_vec().into_boxed_slice(), i as u32);
            debug_assert!(prev.is_none(), "duplicate candidate {c:?}");
            itemsets.push(c.clone());
        }
        HashMapCounter {
            k,
            index,
            itemsets,
            counts: vec![0; candidates.len()],
            scratch: Vec::with_capacity(k),
        }
    }

    /// Recursive k-subset enumeration with probing. `depth` items are
    /// already chosen in `scratch`.
    fn enumerate(&mut self, t: &[ItemId], start: usize, out: &mut CountOutcome) {
        let chosen = self.scratch.len();
        let need = self.k - chosen;
        // Not enough items left to finish a subset.
        if t.len() - start < need {
            return;
        }
        if need == 0 {
            out.work += 1;
            if let Some(&idx) = self.index.get(self.scratch.as_slice()) {
                self.counts[idx as usize] += 1;
                out.hits += 1;
            }
            return;
        }
        for i in start..t.len() {
            self.scratch.push(t[i]);
            self.enumerate(t, i + 1, out);
            self.scratch.pop();
        }
    }
}

impl CandidateCounter for HashMapCounter {
    fn num_candidates(&self) -> usize {
        self.itemsets.len()
    }

    fn k(&self) -> usize {
        self.k
    }

    fn probe(&mut self, itemset: &[ItemId]) -> CountOutcome {
        debug_assert_eq!(itemset.len(), self.k);
        let mut out = CountOutcome { work: 1, hits: 0 };
        if let Some(&idx) = self.index.get(itemset) {
            self.counts[idx as usize] += 1;
            out.hits = 1;
        }
        out
    }

    fn count_transaction(&mut self, t: &[ItemId]) -> CountOutcome {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted txn");
        let mut out = CountOutcome::default();
        if t.len() < self.k || self.itemsets.is_empty() {
            return out;
        }
        if self.k == 2 {
            // Specialized pair loop: the pass the paper measures.
            for i in 0..t.len() - 1 {
                for j in i + 1..t.len() {
                    out.work += 1;
                    let key = [t[i], t[j]];
                    if let Some(&idx) = self.index.get(key.as_slice()) {
                        self.counts[idx as usize] += 1;
                        out.hits += 1;
                    }
                }
            }
        } else {
            self.scratch.clear();
            self.enumerate(t, 0, &mut out);
        }
        out
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn set_counts(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.counts.len());
        self.counts.copy_from_slice(counts);
    }

    fn into_counts(self: Box<Self>) -> Vec<(Itemset, u64)> {
        self.itemsets.into_iter().zip(self.counts).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn pair_path_enumerates_all_pairs() {
        let mut c = HashMapCounter::new(2, &[iset![1, 3]]);
        let out = c.count_transaction(&ids(&[1, 2, 3, 4]));
        assert_eq!(out.work, 6); // C(4,2)
        assert_eq!(out.hits, 1);
    }

    #[test]
    fn k1_counting_works() {
        let mut c = HashMapCounter::new(1, &[iset![2], iset![5]]);
        c.count_transaction(&ids(&[1, 2, 3]));
        c.count_transaction(&ids(&[5]));
        assert_eq!(c.counts(), &[1, 1]);
    }

    #[test]
    fn k4_recursive_path() {
        let cands = vec![iset![1, 2, 3, 4], iset![2, 3, 4, 5]];
        let mut c = HashMapCounter::new(4, &cands);
        let out = c.count_transaction(&ids(&[1, 2, 3, 4, 5]));
        assert_eq!(out.hits, 2);
        assert_eq!(out.work, 5); // C(5,4)
        assert_eq!(c.counts(), &[1, 1]);
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let mut c = HashMapCounter::new(2, &[]);
        let out = c.count_transaction(&ids(&[1, 2, 3]));
        assert_eq!(out, CountOutcome::default());
    }
}
