//! Candidate support counters.
//!
//! Support counting is the hot loop of every algorithm in the paper: for
//! each (extended) transaction, find which candidates it contains and
//! increment their `sup_cou`. Two interchangeable structures:
//!
//! * [`HashMapCounter`] — a flat Fx hash map over the candidates; the
//!   transaction's k-subsets are enumerated and each is probed. This is
//!   the structure the HPA/HPGM papers describe ("search the hash table,
//!   if hit increment its sup_cou") and the default.
//! * [`HashTreeCounter`] — a candidate prefix tree with hashed fan-out in
//!   the style of [RR94]'s hash tree; it walks transaction and tree
//!   together, skipping subsets that cannot match. The ablation benchmark
//!   compares the two.
//!
//! Both report the same two meters: `hits` (successful probes — the
//! quantity Figure 15 plots as "the number of hash table probes to
//! increment sup_cou value") and `work` (abstract CPU steps: enumerated
//! subsets or visited tree nodes) for the cost model.
//!
//! Counts live in one dense `Vec<u64>` in **candidate insertion order**,
//! which is identical on every node (candidate generation is
//! deterministic), so NPGM and the `C_k^D` duplicate sets can all-reduce
//! raw count vectors without any key exchange.

mod hashmap;
mod hashtree;

pub use hashmap::HashMapCounter;
pub use hashtree::HashTreeCounter;

use crate::params::CounterKind;
use gar_types::{ItemId, Itemset};

/// Meters returned by a counting call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountOutcome {
    /// Abstract work: subsets enumerated / tree nodes visited.
    pub work: u64,
    /// Successful probes (candidate count increments).
    pub hits: u64,
}

impl CountOutcome {
    /// Accumulates another outcome into this one.
    pub fn absorb(&mut self, other: CountOutcome) {
        self.work += other.work;
        self.hits += other.hits;
    }
}

/// Footprint of an arena-backed counter, reported as the
/// `counter.arena.*` obs series (one observation per counter built).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Tree nodes in the arena.
    pub nodes: u64,
    /// Edges (fan-out entries) across all nodes.
    pub edges: u64,
    /// Total bytes of the flat arrays.
    pub bytes: u64,
}

/// A support counter over a fixed candidate set.
pub trait CandidateCounter: Send {
    /// Number of candidates.
    fn num_candidates(&self) -> usize;

    /// The `k` of the k-itemsets being counted.
    fn k(&self) -> usize;

    /// Probes one sorted k-itemset; increments its count if it is a
    /// candidate. Returns the outcome (work 1, hits 0/1).
    fn probe(&mut self, itemset: &[ItemId]) -> CountOutcome;

    /// Counts every candidate contained in the sorted, de-duplicated
    /// transaction `t` (increments each at most once).
    fn count_transaction(&mut self, t: &[ItemId]) -> CountOutcome;

    /// The counts, in candidate insertion order.
    fn counts(&self) -> &[u64];

    /// Overwrites the counts (used after an all-reduce).
    fn set_counts(&mut self, counts: &[u64]);

    /// The candidates with their counts, in insertion order.
    fn into_counts(self: Box<Self>) -> Vec<(Itemset, u64)>;

    /// Arena footprint when the counter is backed by a flat arena;
    /// `None` for hash-map structures.
    fn arena_stats(&self) -> Option<ArenaStats> {
        None
    }
}

/// Builds the configured counter over `candidates` (all of size `k`, all
/// distinct).
pub fn build_counter(
    kind: CounterKind,
    k: usize,
    candidates: &[Itemset],
) -> Box<dyn CandidateCounter> {
    match kind {
        CounterKind::HashMap => Box::new(HashMapCounter::new(k, candidates)),
        CounterKind::HashTree => Box::new(HashTreeCounter::new(k, candidates)),
    }
}

/// Approximate in-memory footprint of one candidate k-itemset entry, in
/// bytes: `k` item codes, a 64-bit count, and hash-table overhead. This is
/// the unit of the simulated 256 MB memory budget: NPGM fragments by it,
/// and the TGD/PGD/FGD duplication budget is measured in it.
#[inline]
pub fn candidate_entry_bytes(k: usize) -> u64 {
    (4 * k + 8 + 16) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn counters(k: usize, cands: &[Itemset]) -> Vec<Box<dyn CandidateCounter>> {
        vec![
            build_counter(CounterKind::HashMap, k, cands),
            build_counter(CounterKind::HashTree, k, cands),
        ]
    }

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn both_counters_agree_on_simple_counting() {
        let cands = vec![iset![1, 2], iset![2, 3], iset![4, 5]];
        for mut c in counters(2, &cands) {
            assert_eq!(c.num_candidates(), 3);
            assert_eq!(c.k(), 2);
            c.count_transaction(&ids(&[1, 2, 3]));
            c.count_transaction(&ids(&[2, 3]));
            c.count_transaction(&ids(&[1, 4]));
            let counts = Box::new(c).into_counts();
            let get = |s: &Itemset| counts.iter().find(|(x, _)| x == s).unwrap().1;
            assert_eq!(get(&iset![1, 2]), 1);
            assert_eq!(get(&iset![2, 3]), 2);
            assert_eq!(get(&iset![4, 5]), 0);
        }
    }

    #[test]
    fn probe_hits_and_misses() {
        let cands = vec![iset![1, 2]];
        for mut c in counters(2, &cands) {
            let hit = c.probe(&ids(&[1, 2]));
            assert_eq!(hit.hits, 1);
            let miss = c.probe(&ids(&[1, 3]));
            assert_eq!(miss.hits, 0);
            assert_eq!(c.counts(), &[1]);
        }
    }

    #[test]
    fn counts_preserve_insertion_order() {
        let cands = vec![iset![9, 10], iset![1, 2], iset![5, 6]];
        for mut c in counters(2, &cands) {
            c.probe(&ids(&[1, 2]));
            c.probe(&ids(&[1, 2]));
            c.probe(&ids(&[5, 6]));
            assert_eq!(c.counts(), &[0, 2, 1]);
            let drained = Box::new(c).into_counts();
            let sets: Vec<&Itemset> = drained.iter().map(|(s, _)| s).collect();
            assert_eq!(sets, vec![&iset![9, 10], &iset![1, 2], &iset![5, 6]]);
        }
    }

    #[test]
    fn set_counts_overwrites() {
        let cands = vec![iset![1, 2], iset![3, 4]];
        for mut c in counters(2, &cands) {
            c.probe(&ids(&[1, 2]));
            c.set_counts(&[7, 9]);
            assert_eq!(c.counts(), &[7, 9]);
        }
    }

    #[test]
    fn transaction_shorter_than_k_is_no_work_hit_wise() {
        let cands = vec![iset![1, 2, 3]];
        for mut c in counters(3, &cands) {
            let out = c.count_transaction(&ids(&[1, 2]));
            assert_eq!(out.hits, 0);
            assert_eq!(c.counts(), &[0]);
        }
    }

    #[test]
    fn triple_counting_agrees_between_counters() {
        let cands = vec![
            iset![1, 2, 3],
            iset![1, 2, 4],
            iset![2, 3, 4],
            iset![1, 3, 5],
        ];
        let t = ids(&[1, 2, 3, 4, 5, 6]);
        let mut results = Vec::new();
        for mut c in counters(3, &cands) {
            c.count_transaction(&t);
            results.push(c.counts().to_vec());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], vec![1, 1, 1, 1]);
    }

    #[test]
    fn duplicate_transaction_items_would_be_a_bug_upstream() {
        // Counters require sorted deduped transactions; a candidate is
        // counted at most once per call even when it matches.
        let cands = vec![iset![1, 2]];
        for mut c in counters(2, &cands) {
            c.count_transaction(&ids(&[1, 2]));
            assert_eq!(c.counts(), &[1]);
        }
    }

    #[test]
    fn entry_bytes_grows_with_k() {
        assert!(candidate_entry_bytes(3) > candidate_entry_bytes(2));
        assert_eq!(candidate_entry_bytes(2), 32);
    }

    #[test]
    fn hashtree_does_less_work_on_long_transactions() {
        // With k = 3 and a 20-item transaction, subset enumeration visits
        // C(20,3) = 1140 subsets; the tree only walks matching prefixes.
        let cands = vec![iset![1, 2, 3]];
        let t: Vec<ItemId> = (1..=20).map(ItemId).collect();
        let mut flat = build_counter(CounterKind::HashMap, 3, &cands);
        let mut tree = build_counter(CounterKind::HashTree, 3, &cands);
        let wf = flat.count_transaction(&t).work;
        let wt = tree.count_transaction(&t).work;
        assert!(wt < wf, "tree work {wt} >= flat work {wf}");
        assert_eq!(flat.counts(), tree.counts());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_itemsets(k: usize) -> impl Strategy<Value = Vec<Itemset>> {
        proptest::collection::btree_set(proptest::collection::btree_set(0u32..40, k..=k), 1..25)
            .prop_map(|sets| {
                sets.into_iter()
                    .map(|s| Itemset::from_unsorted(s.into_iter().map(ItemId).collect()))
                    .collect()
            })
    }

    proptest! {
        #[test]
        fn counters_agree_with_naive_containment(
            cands in arb_itemsets(2),
            txns in proptest::collection::vec(
                proptest::collection::btree_set(0u32..40, 0..12), 1..20)
        ) {
            let txns: Vec<Vec<ItemId>> = txns.into_iter()
                .map(|s| s.into_iter().map(ItemId).collect())
                .collect();
            // Ground truth by direct containment.
            let mut truth = vec![0u64; cands.len()];
            for t in &txns {
                for (i, c) in cands.iter().enumerate() {
                    if c.is_contained_in(t) {
                        truth[i] += 1;
                    }
                }
            }
            for kind in [CounterKind::HashMap, CounterKind::HashTree] {
                let mut counter = build_counter(kind, 2, &cands);
                for t in &txns {
                    counter.count_transaction(t);
                }
                prop_assert_eq!(counter.counts(), truth.as_slice());
            }
        }

        #[test]
        fn counters_agree_for_k3(
            cands in arb_itemsets(3),
            txns in proptest::collection::vec(
                proptest::collection::btree_set(0u32..40, 0..10), 1..12)
        ) {
            let txns: Vec<Vec<ItemId>> = txns.into_iter()
                .map(|s| s.into_iter().map(ItemId).collect())
                .collect();
            let mut flat = build_counter(CounterKind::HashMap, 3, &cands);
            let mut tree = build_counter(CounterKind::HashTree, 3, &cands);
            let mut flat_hits = 0;
            let mut tree_hits = 0;
            for t in &txns {
                flat_hits += flat.count_transaction(t).hits;
                tree_hits += tree.count_transaction(t).hits;
            }
            prop_assert_eq!(flat.counts(), tree.counts());
            prop_assert_eq!(flat_hits, tree_hits);
            prop_assert_eq!(flat_hits, flat.counts().iter().sum::<u64>());
        }
    }
}
