//! A deliberately naive reference miner, for differential testing.
//!
//! [`mine_naive`] computes large itemsets by definition: for every
//! candidate set of every size, walk every transaction and test
//! containment against the ancestor-extended transaction. No hash tables,
//! no pruning beyond Apriori's monotonicity, no parallelism — nothing
//! shared with the optimized implementations, so agreement is meaningful.
//! Property tests in `tests/oracle_equivalence.rs` check every algorithm
//! against it on randomized inputs.

use crate::params::{Algorithm, MiningParams};
use crate::report::{LargePass, MiningOutput};
use gar_taxonomy::Taxonomy;
use gar_types::{ItemId, Itemset};

/// Mines `transactions` under `tax` by brute force. Intended for tests
/// only: cost is O(|candidates| × |D| × k) per pass.
pub fn mine_naive(
    transactions: &[Vec<ItemId>],
    tax: &Taxonomy,
    params: &MiningParams,
) -> MiningOutput {
    params.validate().expect("valid params");
    let n = transactions.len() as u64;
    let threshold = params.min_support_count(n);

    // Precompute every extended transaction once.
    let extended: Vec<Vec<ItemId>> = transactions
        .iter()
        .map(|t| tax.extend_transaction(t))
        .collect();

    let count_of = |set: &Itemset| -> u64 {
        extended.iter().filter(|t| set.is_contained_in(t)).count() as u64
    };

    // L1: every item of the universe, by definition of containment.
    let mut passes: Vec<LargePass> = Vec::new();
    let l1: Vec<(Itemset, u64)> = (0..tax.num_items())
        .map(|i| Itemset::singleton(ItemId(i)))
        .map(|s| {
            let c = count_of(&s);
            (s, c)
        })
        .filter(|(_, c)| *c >= threshold)
        .collect();
    passes.push(LargePass { k: 1, itemsets: l1 });

    let mut k = 2;
    loop {
        if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
            break;
        }
        if let Some(max) = params.max_pass {
            if k > max {
                break;
            }
        }
        // Candidates: every k-subset of the large items whose members are
        // pairwise hierarchy-unrelated and whose (k-1)-subsets are all
        // large. Built naively from the previous pass.
        let prev: Vec<&Itemset> = passes
            .last()
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s)
            .collect();
        let items: Vec<ItemId> = {
            let mut v: Vec<ItemId> = passes[0]
                .itemsets
                .iter()
                .map(|(s, _)| s.items()[0])
                .collect();
            v.sort_unstable();
            v
        };
        let mut large = Vec::new();
        let mut choose = vec![0usize; k];
        enumerate_subsets(&items, k, &mut choose, 0, 0, &mut |subset| {
            let set = Itemset::from_sorted(subset.to_vec());
            // Pairwise unrelated.
            for (i, &a) in set.items().iter().enumerate() {
                for &b in &set.items()[i + 1..] {
                    if tax.related(a, b) {
                        return;
                    }
                }
            }
            // Monotonicity: all (k-1)-subsets large.
            for d in 0..set.len() {
                let sub = set.without_index(d);
                if !prev.contains(&&sub) {
                    return;
                }
            }
            let c = count_of(&set);
            if c >= threshold {
                large.push((set, c));
            }
        });
        if large.is_empty() {
            break;
        }
        large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        passes.push(LargePass { k, itemsets: large });
        k += 1;
    }

    passes.retain(|p| !p.itemsets.is_empty());
    MiningOutput {
        algorithm: Algorithm::Cumulate,
        num_transactions: n,
        min_support_count: threshold,
        passes,
    }
}

fn enumerate_subsets(
    items: &[ItemId],
    k: usize,
    _choose: &mut [usize],
    start: usize,
    depth: usize,
    f: &mut impl FnMut(&[ItemId]),
) {
    fn rec(
        items: &[ItemId],
        start: usize,
        need: usize,
        scratch: &mut Vec<ItemId>,
        f: &mut impl FnMut(&[ItemId]),
    ) {
        if need == 0 {
            f(scratch);
            return;
        }
        if items.len() - start < need {
            return;
        }
        for i in start..items.len() {
            scratch.push(items[i]);
            rec(items, i + 1, need - 1, scratch, f);
            scratch.pop();
        }
    }
    debug_assert_eq!(start, 0);
    debug_assert_eq!(depth, 0);
    let mut scratch = Vec::with_capacity(k);
    rec(items, 0, k, &mut scratch, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn matches_hand_computed_example() {
        // 0 -> {1, 2}; transactions over leaves.
        let mut b = TaxonomyBuilder::new(4);
        b.edge(1, 0).unwrap();
        b.edge(2, 0).unwrap();
        let tax = b.build().unwrap();
        let txns = vec![ids(&[1, 3]), ids(&[2, 3]), ids(&[1])];
        let out = mine_naive(&txns, &tax, &MiningParams::with_min_support(0.6));
        // {0} in all 3, {3} in 2, {1} in 2; {0,3} in 2.
        assert_eq!(out.support_of(&[ItemId(0)]), Some(3));
        assert_eq!(out.support_of(&[ItemId(3)]), Some(2));
        assert_eq!(out.support_of(&[ItemId(0), ItemId(3)]), Some(2));
        // {1,0} pruned as related.
        assert_eq!(out.support_of(&[ItemId(0), ItemId(1)]), None);
    }

    #[test]
    fn agrees_with_cumulate_on_small_input() {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        let tax = b.build().unwrap();
        let txns = vec![
            ids(&[2]),
            ids(&[3, 7]),
            ids(&[4, 7]),
            ids(&[6]),
            ids(&[6]),
            ids(&[3]),
        ];
        let naive = mine_naive(&txns, &tax, &MiningParams::with_min_support(0.3));
        let db = gar_storage::PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let fast = crate::sequential::cumulate(
            db.partition(0),
            &tax,
            &MiningParams::with_min_support(0.3),
        )
        .unwrap();
        assert_eq!(naive.num_large(), fast.num_large());
        for (a, b) in naive.all_large().zip(fast.all_large()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_input() {
        let tax = TaxonomyBuilder::new(3).build().unwrap();
        let out = mine_naive(&[], &tax, &MiningParams::with_min_support(0.5));
        assert_eq!(out.num_large(), 0);
    }

    #[test]
    fn respects_max_pass() {
        let tax = TaxonomyBuilder::new(4).build().unwrap();
        let txns = vec![ids(&[1, 2, 3]); 5];
        let out = mine_naive(
            &txns,
            &tax,
            &MiningParams::with_min_support(0.5).max_pass(2),
        );
        assert!(out.large(2).is_some());
        assert!(out.large(3).is_none());
        let full = mine_naive(&txns, &tax, &MiningParams::with_min_support(0.5));
        assert_eq!(full.large(3).unwrap().itemsets, vec![(iset![1, 2, 3], 5)]);
    }
}
