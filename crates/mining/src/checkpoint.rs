//! Pass-level checkpointing of a parallel mining run.
//!
//! After every completed pass the coordinator persists the global `L_k`
//! chain plus the pass metadata the final report needs, so `mine
//! --resume` (and degraded-mode recovery after a node failure) restarts
//! from the last complete pass instead of from scratch.
//!
//! Format (little-endian, style of [`crate::persist`]): magic `GCKP`,
//! `u32` version, algorithm name (`u32` length + UTF-8), `u64`
//! transaction count, `u64` minimum-support count, the global item
//! counts (`u32` length + `u64`s), `u32` pass count, then per pass a
//! `u32 k`, three `u64` metadata fields (candidates / duplicated /
//! fragments) and a length-prefixed [`crate::wire::encode_counted`]
//! block. The whole payload is sealed by a trailing FxHash **checksum**;
//! writes go through a temp file + rename, and the previous checkpoint
//! is rotated to `.prev` — so a crash mid-write can never leave the only
//! copy torn, and a torn copy is detected, not mis-resumed.

use crate::params::Algorithm;
use crate::persist::algorithm_by_name;
use crate::wire;
use gar_types::{Error, Itemset, Result};
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: &[u8; 4] = b"GCKP";
const VERSION: u32 = 1;

/// One completed pass as recorded in a checkpoint: the global `L_k` and
/// the metadata the per-pass report needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPass {
    /// Pass number (`k` = itemset size).
    pub k: usize,
    /// `|C_k|` generated in this pass.
    pub num_candidates: usize,
    /// `|C_k^D|` duplicated to every node (TGD/PGD/FGD).
    pub num_duplicated: usize,
    /// NPGM fragment count.
    pub num_fragments: usize,
    /// The global `L_k` with support counts.
    pub itemsets: Vec<(Itemset, u64)>,
}

/// Everything needed to restart mining after pass `k`: the thresholds
/// and item counts of pass 1 plus every completed `L_k` chain link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Algorithm that produced this checkpoint (resume refuses a
    /// mismatch rather than silently mixing algorithms).
    pub algorithm: Algorithm,
    /// Global transaction count (pass 1's all-reduce).
    pub num_transactions: u64,
    /// Absolute minimum support count.
    pub min_support_count: u64,
    /// Global per-item support counts (the duplicate-selection
    /// heuristics price candidates with these in later passes).
    pub item_counts: Vec<u64>,
    /// Completed passes, `k = 1..`, consecutive.
    pub passes: Vec<CheckpointPass>,
}

impl Checkpoint {
    /// The pass after which mining resumes (the last completed one).
    pub fn last_pass(&self) -> usize {
        self.passes.last().map_or(0, |p| p.k)
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = gar_types::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Serializes a checkpoint (checksum included).
fn encode(cp: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let name = cp.algorithm.name().as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&cp.num_transactions.to_le_bytes());
    out.extend_from_slice(&cp.min_support_count.to_le_bytes());
    out.extend_from_slice(&(cp.item_counts.len() as u32).to_le_bytes());
    for &c in &cp.item_counts {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out.extend_from_slice(&(cp.passes.len() as u32).to_le_bytes());
    for pass in &cp.passes {
        out.extend_from_slice(&(pass.k as u32).to_le_bytes());
        out.extend_from_slice(&(pass.num_candidates as u64).to_le_bytes());
        out.extend_from_slice(&(pass.num_duplicated as u64).to_le_bytes());
        out.extend_from_slice(&(pass.num_fragments as u64).to_le_bytes());
        let block = wire::encode_counted(pass.k, &pass.itemsets);
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounded cursor over a checkpoint body; every short read is a clean
/// [`Error::Corrupt`], never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::Corrupt("checkpoint truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        let bytes: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| Error::Corrupt("checkpoint u32 field malformed".into()))?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64> {
        let bytes: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| Error::Corrupt("checkpoint u64 field malformed".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }
}

/// Decodes a checkpoint, verifying the checksum and every structural
/// invariant. All damage surfaces as [`Error::Corrupt`].
fn decode(bytes: &[u8]) -> Result<Checkpoint> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(Error::Corrupt("checkpoint too short".into()));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let tail: [u8; 8] = tail
        .try_into()
        .map_err(|_| Error::Corrupt("checkpoint checksum tail malformed".into()))?;
    let stored = u64::from_le_bytes(tail);
    if checksum(body) != stored {
        return Err(Error::Corrupt("checkpoint checksum mismatch".into()));
    }
    let mut c = Cursor {
        bytes: body,
        pos: 0,
    };
    if c.take(4)? != MAGIC {
        return Err(Error::Corrupt("not a checkpoint file (bad magic)".into()));
    }
    if c.u32()? != VERSION {
        return Err(Error::Corrupt("unsupported checkpoint version".into()));
    }
    let name_len = c.u32()? as usize;
    if name_len > 64 {
        return Err(Error::Corrupt("implausible algorithm name length".into()));
    }
    let name = std::str::from_utf8(c.take(name_len)?)
        .map_err(|_| Error::Corrupt("algorithm name is not UTF-8".into()))?;
    let algorithm = algorithm_by_name(name)
        .map_err(|_| Error::Corrupt(format!("unknown algorithm '{name}'")))?;
    let num_transactions = c.u64()?;
    let min_support_count = c.u64()?;
    let num_items = c.u32()? as usize;
    if num_items > 1 << 26 {
        return Err(Error::Corrupt("implausible item-count length".into()));
    }
    let mut item_counts = Vec::with_capacity(num_items);
    for _ in 0..num_items {
        item_counts.push(c.u64()?);
    }
    let num_passes = c.u32()? as usize;
    if num_passes > 64 {
        return Err(Error::Corrupt("implausible pass count".into()));
    }
    let mut passes = Vec::with_capacity(num_passes);
    for i in 0..num_passes {
        let k = c.u32()? as usize;
        if k != i + 1 {
            return Err(Error::Corrupt(format!(
                "checkpoint passes are not consecutive (slot {i} holds pass {k})"
            )));
        }
        let num_candidates = c.u64()? as usize;
        let num_duplicated = c.u64()? as usize;
        let num_fragments = c.u64()? as usize;
        let block_len = c.u32()? as usize;
        let itemsets = wire::decode_counted(c.take(block_len)?)?;
        if itemsets.iter().any(|(s, _)| s.len() != k) {
            return Err(Error::Corrupt(format!("pass {k} holds non-{k}-itemsets")));
        }
        passes.push(CheckpointPass {
            k,
            num_candidates,
            num_duplicated,
            num_fragments,
            itemsets,
        });
    }
    if c.pos != body.len() {
        return Err(Error::Corrupt("checkpoint has trailing garbage".into()));
    }
    Ok(Checkpoint {
        algorithm,
        num_transactions,
        min_support_count,
        item_counts,
        passes,
    })
}

/// The checkpoint file inside `dir`.
pub fn checkpoint_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join("mining.ckpt")
}

/// Path of the rotated previous checkpoint.
fn prev_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".prev");
    PathBuf::from(s)
}

/// Writes `cp` to `path` atomically: temp file, rotate the old file to
/// `.prev`, rename into place.
pub fn save_checkpoint(cp: &Checkpoint, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, encode(cp))
        .map_err(|e| Error::io(format!("writing checkpoint {}", tmp.display()), e))?;
    if path.exists() {
        std::fs::rename(path, prev_path(path))
            .map_err(|e| Error::io(format!("rotating checkpoint {}", path.display()), e))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| Error::io(format!("publishing checkpoint {}", path.display()), e))
}

/// Reads and validates the checkpoint at `path`.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<Checkpoint> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| Error::io(format!("reading checkpoint {}", path.display()), e))?;
    decode(&bytes)
}

/// Loads the newest intact checkpoint in `dir`: the current file if it
/// verifies, else the rotated `.prev`, else `None` (cold start). A
/// corrupt or truncated file is *never* resumed from.
pub fn load_latest(dir: impl AsRef<Path>) -> Option<Checkpoint> {
    let main = checkpoint_path(dir);
    load_checkpoint(&main)
        .ok()
        .or_else(|| load_checkpoint(prev_path(&main)).ok())
}

/// Where completed passes are recorded during a run: always in memory
/// (so in-process recovery can restart from the last pass even without a
/// checkpoint directory), and on disk when a directory is configured.
/// Shared by reference with every node thread; only the coordinator
/// writes.
pub struct CheckpointSink {
    mem: Mutex<Option<Checkpoint>>,
    dir: Option<PathBuf>,
}

impl CheckpointSink {
    /// A sink writing to `dir` (created if missing), or memory-only.
    pub fn new(dir: Option<PathBuf>) -> Result<CheckpointSink> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d)
                .map_err(|e| Error::io(format!("creating checkpoint dir {}", d.display()), e))?;
        }
        Ok(CheckpointSink {
            mem: Mutex::new(None),
            dir,
        })
    }

    /// Seeds the in-memory copy (used when resuming from disk, so a
    /// later in-process recovery still has the restored state).
    pub fn seed(&self, cp: Checkpoint) {
        *self
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cp);
    }

    /// Records a checkpoint (memory always, disk if configured).
    pub fn store(&self, cp: Checkpoint) -> Result<()> {
        if let Some(dir) = &self.dir {
            save_checkpoint(&cp, checkpoint_path(dir))?;
        }
        *self
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cp);
        Ok(())
    }

    /// The most recent checkpoint recorded in this process.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn sample() -> Checkpoint {
        Checkpoint {
            algorithm: Algorithm::HHpgm,
            num_transactions: 500,
            min_support_count: 25,
            item_counts: vec![100, 80, 60, 40, 20],
            passes: vec![
                CheckpointPass {
                    k: 1,
                    num_candidates: 5,
                    num_duplicated: 0,
                    num_fragments: 1,
                    itemsets: vec![(iset![0], 100), (iset![1], 80)],
                },
                CheckpointPass {
                    k: 2,
                    num_candidates: 4,
                    num_duplicated: 1,
                    num_fragments: 1,
                    itemsets: vec![(iset![0, 1], 30)],
                },
            ],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gar-ckpt-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        assert_eq!(decode(&encode(&cp)).unwrap(), cp);
        assert_eq!(cp.last_pass(), 2);
    }

    #[test]
    fn every_truncation_is_a_clean_corrupt_error() {
        // Cutting the file at *any* length — through the header, the item
        // counts, a pass block, or the checksum — must yield Corrupt.
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, Error::Corrupt(_)),
                "truncation at {len}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // The trailing checksum seals the whole payload: flipping any one
        // byte (including the checksum itself) must be detected.
        let bytes = encode(&sample());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let err = decode(&bad).unwrap_err();
            assert!(matches!(err, Error::Corrupt(_)), "flip at {i}: {err:?}");
        }
    }

    #[test]
    fn non_consecutive_passes_rejected() {
        let mut cp = sample();
        cp.passes[1].k = 3;
        cp.passes[1].itemsets = vec![(iset![0, 1, 2], 26)];
        let err = decode(&encode(&cp)).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn save_load_and_rotation() {
        let dir = tmpdir("rotate");
        let path = checkpoint_path(&dir);
        let mut cp = sample();
        cp.passes.truncate(1);
        save_checkpoint(&cp, &path).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), cp);

        let full = sample();
        save_checkpoint(&full, &path).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), full);
        // The one-pass checkpoint rotated to .prev.
        assert_eq!(load_checkpoint(prev_path(&path)).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_falls_back_to_prev_then_cold_start() {
        let dir = tmpdir("fallback");
        let path = checkpoint_path(&dir);
        let cp = sample();
        save_checkpoint(&cp, &path).unwrap();
        save_checkpoint(&cp, &path).unwrap(); // .prev now also intact

        // Corrupt the current file: resume must fall back to .prev.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_latest(&dir).unwrap(), cp);

        // Corrupt .prev too: cold start, never a panic or a mis-resume.
        std::fs::write(prev_path(&path), b"GCKPgarbage").unwrap();
        assert!(load_latest(&dir).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_records_in_memory_and_on_disk() {
        let dir = tmpdir("sink");
        let sink = CheckpointSink::new(Some(dir.clone())).unwrap();
        assert!(sink.latest().is_none());
        let cp = sample();
        sink.store(cp.clone()).unwrap();
        assert_eq!(sink.latest().unwrap(), cp);
        assert_eq!(load_latest(&dir).unwrap(), cp);
        std::fs::remove_dir_all(&dir).ok();

        let memory_only = CheckpointSink::new(None).unwrap();
        memory_only.store(cp.clone()).unwrap();
        assert_eq!(memory_only.latest().unwrap(), cp);
    }
}
