//! The six parallel algorithms of the paper, on the shared-nothing
//! simulator.
//!
//! All algorithms share the pass skeleton (the paper's steps 1-4):
//!
//! 1. every node generates the identical candidate set `C_k` from
//!    `L_{k-1}` (deterministic — see [`crate::candidate`]);
//! 2. every node scans its local partition `D^n` once, exchanging data as
//!    the algorithm dictates;
//! 3. counts are assembled (all-reduce for replicated candidate sets,
//!    local decision + coordinator gather for partitioned ones);
//! 4. the coordinator's `L_k` goes everywhere; iterate until empty.
//!
//! Where they differ is candidate placement, which is the paper's whole
//! subject:
//!
//! | module | placement | data shipped per transaction |
//! |---|---|---|
//! | [`npgm`] | replicated (fragmented when `\|C_k\| > M`) | nothing — but one full partition re-scan per fragment |
//! | [`hpgm`] | hash of the itemset | every k-subset of the ancestor-extended transaction |
//! | [`hhpgm`] | hash of the *root* itemset | the lowest-large-item sub-transaction, once per owner node |
//! | [`hhpgm`] + [`duplicate`] | H-HPGM minus the hottest candidates, which are replicated | same, minus traffic for fully-duplicated root groups |

pub(crate) mod common;
pub mod duplicate;
pub mod flat;
mod hhpgm;
mod hpgm;
mod npgm;
pub mod rules;

use crate::checkpoint::{self, Checkpoint, CheckpointSink};
use crate::parallel::common::{PassPersistence, NO_PERSIST};
use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use gar_cluster::ClusterConfig;
use gar_storage::{MultiSource, PartitionedDatabase, TransactionSource};
use gar_taxonomy::Taxonomy;
use gar_types::{Error, Result};
use std::path::PathBuf;

pub use duplicate::{select_duplicates, DuplicateGrain, DuplicateSelection};
pub use flat::{mine_parallel_flat, FlatAlgorithm};

/// Fault-tolerance knobs for [`mine_parallel_with`]. The default is the
/// historical behavior: no checkpointing, no resume, fail on the first
/// node failure.
#[derive(Debug, Clone, Default)]
pub struct MineOptions {
    /// Directory for pass-level checkpoints; `None` keeps them in memory
    /// only (still enough for in-process degraded-mode recovery).
    pub checkpoint_dir: Option<PathBuf>,
    /// Restart from the newest intact checkpoint in `checkpoint_dir`
    /// (cold start if there is none).
    pub resume: bool,
    /// How many node failures to tolerate by re-running over the
    /// survivors (each failed node's partitions are redistributed and
    /// replayed). `0` propagates the first failure.
    pub max_node_failures: usize,
}

/// Dispatches to the algorithm implementation over explicit per-node
/// sources.
fn dispatch(
    algorithm: Algorithm,
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &PassPersistence<'_>,
) -> Result<ParallelReport> {
    let grain = match algorithm {
        Algorithm::Apriori | Algorithm::Cumulate => {
            return Err(Error::InvalidConfig(format!(
                "{algorithm} is a sequential algorithm; use gar_mining::sequential"
            )))
        }
        Algorithm::FpGrowth => {
            return Err(Error::InvalidConfig(
                "FP-Growth is a pattern-growth miner implemented by the gar-fpg crate; \
                 call gar_fpg::mine_parallel (or `gar-cli mine --algo fp-growth`)"
                    .into(),
            ))
        }
        Algorithm::Npgm => return npgm::mine(sources, tax, params, cluster, persist),
        Algorithm::Hpgm => return hpgm::mine(sources, tax, params, cluster, persist),
        Algorithm::HHpgm => None,
        Algorithm::HHpgmTgd => Some(DuplicateGrain::Tree),
        Algorithm::HHpgmPgd => Some(DuplicateGrain::Path),
        Algorithm::HHpgmFgd => Some(DuplicateGrain::Fine),
    };
    hhpgm::mine(algorithm, grain, sources, tax, params, cluster, persist)
}

/// Runs `algorithm` over `db` (one partition per node) with hierarchy
/// `tax` on a simulated cluster of `cluster.num_nodes` nodes.
///
/// # Errors
/// Rejects sequential algorithm identifiers, a node/partition mismatch,
/// and invalid parameters; propagates node failures.
pub fn mine_parallel(
    algorithm: Algorithm,
    db: &PartitionedDatabase,
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    check_partitions(db, cluster)?;
    let sources: Vec<&dyn TransactionSource> =
        (0..db.num_partitions()).map(|i| db.partition(i)).collect();
    dispatch(algorithm, &sources, tax, params, cluster, &NO_PERSIST)
}

fn check_partitions(db: &PartitionedDatabase, cluster: &ClusterConfig) -> Result<()> {
    if db.num_partitions() != cluster.num_nodes {
        return Err(Error::InvalidConfig(format!(
            "database has {} partitions but the cluster has {} nodes",
            db.num_partitions(),
            cluster.num_nodes
        )));
    }
    Ok(())
}

/// [`mine_parallel`] with the fault-tolerant runtime: pass-level
/// checkpointing, `--resume`, and degraded-mode recovery.
///
/// On a tolerated node failure the failed node's partitions are
/// redistributed round-robin over the survivors (each survivor scans its
/// own partitions plus the adopted ones back-to-back via
/// [`MultiSource`]), completed passes are restored from the latest
/// checkpoint, and the pass loop re-runs on the smaller cluster. Global
/// support counts do not depend on how transactions are partitioned, so
/// the mined output is identical to the fault-free run; the report's
/// `degraded` notes record what happened.
pub fn mine_parallel_with(
    algorithm: Algorithm,
    db: &PartitionedDatabase,
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    opts: &MineOptions,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    check_partitions(db, cluster)?;
    if matches!(algorithm, Algorithm::Apriori | Algorithm::Cumulate) {
        return Err(Error::InvalidConfig(format!(
            "{algorithm} is a sequential algorithm; use gar_mining::sequential"
        )));
    }
    if algorithm == Algorithm::FpGrowth {
        return Err(Error::InvalidConfig(
            "FP-Growth is a pattern-growth miner implemented by the gar-fpg crate; \
             call gar_fpg::mine_parallel_with (or `gar-cli mine --algo fp-growth`)"
                .into(),
        ));
    }

    let want_sink = opts.checkpoint_dir.is_some() || opts.max_node_failures > 0;
    let sink = if want_sink {
        Some(CheckpointSink::new(opts.checkpoint_dir.clone())?)
    } else {
        None
    };

    let mut restore: Option<Checkpoint> = None;
    if opts.resume {
        if let Some(dir) = &opts.checkpoint_dir {
            if let Some(cp) = checkpoint::load_latest(dir) {
                if cp.algorithm != algorithm {
                    return Err(Error::InvalidConfig(format!(
                        "checkpoint was written by {} but {algorithm} was requested",
                        cp.algorithm
                    )));
                }
                if let Some(s) = &sink {
                    s.seed(cp.clone());
                }
                restore = Some(cp);
            }
        }
    }

    // `slots[s]` holds the original partition indices node `s` scans in
    // the current attempt; a failed node's slot is dissolved into the
    // survivors' slots.
    let mut slots: Vec<Vec<usize>> = (0..cluster.num_nodes).map(|i| vec![i]).collect();
    let mut degraded: Vec<String> = Vec::new();
    let mut failures = 0usize;
    loop {
        let mut attempt = cluster.clone();
        attempt.num_nodes = slots.len();
        let multis: Vec<MultiSource<'_>> = slots
            .iter()
            .map(|parts| MultiSource::new(parts.iter().map(|&i| db.partition(i)).collect()))
            .collect();
        let sources: Vec<&dyn TransactionSource> =
            multis.iter().map(|m| m as &dyn TransactionSource).collect();
        let persist = PassPersistence {
            resume_from: restore.as_ref(),
            sink: sink.as_ref(),
        };
        match dispatch(algorithm, &sources, tax, params, &attempt, &persist) {
            Ok(mut report) => {
                report.degraded = degraded;
                return Ok(report);
            }
            Err(Error::NodeFailure { node, reason })
                if failures < opts.max_node_failures && slots.len() > 1 && node < slots.len() =>
            {
                failures += 1;
                let orphaned = slots.remove(node);
                let survivors = slots.len();
                for (j, part) in orphaned.iter().enumerate() {
                    slots[j % survivors].push(*part);
                }
                restore = sink.as_ref().and_then(|s| s.latest());
                let from_pass = restore.as_ref().map_or(0, Checkpoint::last_pass);
                degraded.push(format!(
                    "node {node} failed ({reason}); redistributed partitions {orphaned:?} \
                     across {survivors} survivors and resumed after pass {from_pass}"
                ));
            }
            Err(e) => return Err(e),
        }
    }
}
