//! The six parallel algorithms of the paper, on the shared-nothing
//! simulator.
//!
//! All algorithms share the pass skeleton (the paper's steps 1-4):
//!
//! 1. every node generates the identical candidate set `C_k` from
//!    `L_{k-1}` (deterministic — see [`crate::candidate`]);
//! 2. every node scans its local partition `D^n` once, exchanging data as
//!    the algorithm dictates;
//! 3. counts are assembled (all-reduce for replicated candidate sets,
//!    local decision + coordinator gather for partitioned ones);
//! 4. the coordinator's `L_k` goes everywhere; iterate until empty.
//!
//! Where they differ is candidate placement, which is the paper's whole
//! subject:
//!
//! | module | placement | data shipped per transaction |
//! |---|---|---|
//! | [`npgm`] | replicated (fragmented when `\|C_k\| > M`) | nothing — but one full partition re-scan per fragment |
//! | [`hpgm`] | hash of the itemset | every k-subset of the ancestor-extended transaction |
//! | [`hhpgm`] | hash of the *root* itemset | the lowest-large-item sub-transaction, once per owner node |
//! | [`hhpgm`] + [`duplicate`] | H-HPGM minus the hottest candidates, which are replicated | same, minus traffic for fully-duplicated root groups |

pub(crate) mod common;
pub mod duplicate;
pub mod flat;
mod hhpgm;
mod hpgm;
mod npgm;
pub mod rules;

use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use gar_cluster::ClusterConfig;
use gar_storage::PartitionedDatabase;
use gar_taxonomy::Taxonomy;
use gar_types::{Error, Result};

pub use duplicate::{select_duplicates, DuplicateGrain, DuplicateSelection};
pub use flat::{mine_parallel_flat, FlatAlgorithm};

/// Runs `algorithm` over `db` (one partition per node) with hierarchy
/// `tax` on a simulated cluster of `cluster.num_nodes` nodes.
///
/// # Errors
/// Rejects sequential algorithm identifiers, a node/partition mismatch,
/// and invalid parameters; propagates node failures.
pub fn mine_parallel(
    algorithm: Algorithm,
    db: &PartitionedDatabase,
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    if db.num_partitions() != cluster.num_nodes {
        return Err(Error::InvalidConfig(format!(
            "database has {} partitions but the cluster has {} nodes",
            db.num_partitions(),
            cluster.num_nodes
        )));
    }
    let grain = match algorithm {
        Algorithm::Apriori | Algorithm::Cumulate => {
            return Err(Error::InvalidConfig(format!(
                "{algorithm} is a sequential algorithm; use gar_mining::sequential"
            )))
        }
        Algorithm::Npgm => return npgm::mine(db, tax, params, cluster),
        Algorithm::Hpgm => return hpgm::mine(db, tax, params, cluster),
        Algorithm::HHpgm => None,
        Algorithm::HHpgmTgd => Some(DuplicateGrain::Tree),
        Algorithm::HHpgmPgd => Some(DuplicateGrain::Path),
        Algorithm::HHpgmFgd => Some(DuplicateGrain::Fine),
    };
    hhpgm::mine(algorithm, grain, db, tax, params, cluster)
}
