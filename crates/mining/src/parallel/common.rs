//! Shared plumbing for the parallel algorithms: pass 1, scan accounting,
//! subset enumeration, the coordinator gather, and report assembly.

use crate::candidate::{generate_candidates, generate_pairs};
use crate::checkpoint::{Checkpoint, CheckpointPass, CheckpointSink};
use crate::counter::{candidate_entry_bytes, CandidateCounter};
use crate::params::{Algorithm, CounterKind, MiningParams};
use crate::report::{LargePass, MiningOutput, ParallelReport, PassReport};
use crate::sequential::large_items_from_counts;
use crate::wire;
use gar_cluster::{ClusterConfig, ClusterRun, NodeCtx, NodeStatsSnapshot, RetryPolicy};
use gar_storage::TransactionSource;
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Itemset, Result};

/// Message tags used by the pass-k exchange phases.
pub(crate) mod tags {
    /// A sub-transaction (item list) — the H-HPGM family.
    pub const ITEMS: u32 = 1;
    /// A flat batch of k-itemsets — HPGM.
    pub const ITEMSETS: u32 = 2;
    /// An `L_k^n` fragment flowing to the coordinator.
    pub const GATHER: u32 = 3;
}

/// Flush threshold for outgoing message batches, in bytes. Large enough to
/// amortize per-message latency, small enough to keep the exchange flowing
/// (the SP-2 implementations batched the same way).
pub(crate) const BATCH_FLUSH_BYTES: usize = 16 * 1024;

/// How many transactions to process between opportunistic inbox drains
/// during an exchange phase.
pub(crate) const POLL_EVERY_TXNS: usize = 32;

/// Per-pass bookkeeping accumulated by a node: everything the report needs
/// beyond the counter snapshots.
#[derive(Debug, Clone)]
pub(crate) struct NodePassInfo {
    pub k: usize,
    pub num_candidates: usize,
    pub num_duplicated: usize,
    pub num_fragments: usize,
    pub num_large: usize,
    /// `true` when this pass was replayed from a checkpoint instead of
    /// computed (its `delta` is zero: no work was redone).
    pub restored: bool,
    pub delta: NodeStatsSnapshot,
}

/// How the pass loop interacts with checkpoints: where to resume from
/// (if anywhere) and where the coordinator records completed passes.
pub(crate) struct PassPersistence<'a> {
    /// A verified checkpoint to restart from; its passes are replayed
    /// without rescanning.
    pub resume_from: Option<&'a Checkpoint>,
    /// Completed-pass sink, written by the coordinator only.
    pub sink: Option<&'a CheckpointSink>,
}

/// Run with no checkpointing at all (the default path).
pub(crate) const NO_PERSIST: PassPersistence<'static> = PassPersistence {
    resume_from: None,
    sink: None,
};

/// What each node thread returns to the report assembler.
pub(crate) struct NodeOutcome {
    pub pass_infos: Vec<NodePassInfo>,
    /// The mined output; identical on every node, so the assembler takes
    /// node 0's.
    pub output: MiningOutput,
}

/// Result of the shared pass 1.
pub(crate) struct Pass1 {
    pub num_transactions: u64,
    pub min_support_count: u64,
    /// Global per-item support counts (dense) — the duplicate-selection
    /// heuristics of TGD/PGD/FGD price candidates with these.
    pub item_counts: Vec<u64>,
    pub large: LargePass,
}

/// Pass 1 (identical in every algorithm): count all items of all levels
/// over ancestor-extended local transactions, then all-reduce.
pub(crate) fn pass1(
    ctx: &NodeCtx,
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
) -> Result<Pass1> {
    let num_transactions = ctx.all_reduce_u64(&[part.num_transactions() as u64])?[0];
    let min_support_count = params.min_support_count(num_transactions);
    let mut counts = vec![0u64; tax.num_items() as usize];
    let mut extended = Vec::new();
    scan_partition(ctx, part, |t| {
        tax.extend_transaction_into(t, &mut extended);
        ctx.stats().add_cpu(extended.len() as u64);
        for &it in &extended {
            counts[it.index()] += 1;
        }
        Ok(())
    })?;
    let _count = ctx.span("count");
    let global = ctx.all_reduce_u64(&counts)?;
    let large = large_items_from_counts(&global, min_support_count);
    Ok(Pass1 {
        num_transactions,
        min_support_count,
        item_counts: global.as_ref().clone(),
        large,
    })
}

/// One full pass over the node's local partition, with I/O accounting
/// (bytes + scan-pass counters — NPGM's fragment loop makes these the
/// story of Figure 14).
pub(crate) fn scan_partition(
    ctx: &NodeCtx,
    part: &dyn TransactionSource,
    mut f: impl FnMut(&[ItemId]) -> Result<()>,
) -> Result<()> {
    let _scan = ctx.span("scan");
    let before = part.bytes_read();
    // Opening the scan is where injected (and real) storage errors
    // surface; retrying the *open* can never double-count transactions.
    let mut scan = RetryPolicy::default().run(|| {
        ctx.inject_scan_fault()?;
        part.scan()
    })?;
    let mut transactions = 0u64;
    while let Some(t) = scan.next_slice()? {
        transactions += 1;
        f(t)?;
    }
    drop(scan);
    ctx.stats().record_io(part.bytes_read() - before);
    ctx.stats().record_scan_pass();
    let obs = ctx.obs();
    if obs.is_enabled() {
        let labels = [("node", ctx.node_id() as u64), ("pass", ctx.current_pass())];
        obs.add("scan.passes", &labels, 1);
        obs.add("scan.transactions", &labels, transactions);
        obs.add("scan.bytes", &labels, part.bytes_read() - before);
    }
    Ok(())
}

/// Generates pass-k candidates exactly as the sequential Cumulate does
/// (identical on every node).
pub(crate) fn candidates_for_pass(k: usize, prev: &LargePass, tax: &Taxonomy) -> Vec<Itemset> {
    if k == 2 {
        let l1: Vec<ItemId> = prev.itemsets.iter().map(|(s, _)| s.items()[0]).collect();
        generate_pairs(&l1, Some(tax))
    } else {
        let prev_sets: Vec<Itemset> = prev.itemsets.iter().map(|(s, _)| s.clone()).collect();
        generate_candidates(&prev_sets)
    }
}

/// Byte footprint of `count` candidate k-itemsets under the memory model.
pub(crate) fn candidates_bytes(k: usize, count: usize) -> u64 {
    count as u64 * candidate_entry_bytes(k)
}

/// Assembles the global `L_k` from each node's locally decided fragment:
/// non-coordinators ship `L_k^n` to node 0, the coordinator merges and
/// broadcasts the union (the paper's step 3). Fragments own disjoint
/// candidates, so the merge is a concatenation + sort.
pub(crate) fn gather_large(
    ctx: &NodeCtx,
    k: usize,
    local: Vec<(Itemset, u64)>,
) -> Result<Vec<(Itemset, u64)>> {
    let _gather = ctx.span("gather");
    if ctx.is_coordinator() {
        let mut all = local;
        for _ in 0..ctx.num_nodes() - 1 {
            let env = ctx.recv()?;
            if env.tag != tags::GATHER {
                return Err(Error::Protocol(format!(
                    "coordinator expected GATHER, got tag {}",
                    env.tag
                )));
            }
            all.extend(wire::decode_counted(&env.payload)?);
        }
        all.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        let encoded = wire::encode_counted(k, &all);
        ctx.broadcast(Some(encoded))?;
        Ok(all)
    } else {
        ctx.send(0, tags::GATHER, wire::encode_counted(k, &local))?;
        let merged = ctx.broadcast(None)?;
        wire::decode_counted(&merged)
    }
}

/// Enumerates every k-subset of the sorted slice `t`, invoking `f` on
/// each. The HPGM send loop needs the subsets themselves (to route them),
/// so this cannot be folded into a counter.
pub(crate) fn for_each_k_subset(
    t: &[ItemId],
    k: usize,
    scratch: &mut Vec<ItemId>,
    f: &mut impl FnMut(&[ItemId]) -> Result<()>,
) -> Result<()> {
    if t.len() < k {
        return Ok(());
    }
    if k == 2 {
        for i in 0..t.len() - 1 {
            for j in i + 1..t.len() {
                f(&[t[i], t[j]])?;
            }
        }
        return Ok(());
    }
    fn rec(
        t: &[ItemId],
        start: usize,
        need: usize,
        scratch: &mut Vec<ItemId>,
        f: &mut impl FnMut(&[ItemId]) -> Result<()>,
    ) -> Result<()> {
        if need == 0 {
            return f(scratch);
        }
        if t.len() - start < need {
            return Ok(());
        }
        for i in start..t.len() {
            scratch.push(t[i]);
            rec(t, i + 1, need - 1, scratch, f)?;
            scratch.pop();
        }
        Ok(())
    }
    scratch.clear();
    rec(t, 0, k, scratch, f)
}

/// The root-itemset partitioning key of the H-HPGM family: each item
/// replaced by its root, the multiset sorted. Duplicates are *kept* — the
/// multiset `(r, r)` is a different hash bucket than `(r)`, exactly as in
/// the paper's `h(X, Y)` over root codes.
pub(crate) fn root_key(items: &[ItemId], tax: &Taxonomy) -> Box<[u32]> {
    let mut roots: Vec<u32> = items.iter().map(|&i| tax.root_of(i).raw()).collect();
    roots.sort_unstable();
    roots.into_boxed_slice()
}

/// Enumerates every k-multiset over `roots` (ascending root codes) whose
/// per-root multiplicity does not exceed that root's `avail` (the number
/// of distinct transaction items under it — fewer can never support a
/// candidate, because ancestor-related items never form one).
pub(crate) fn for_each_root_multiset(roots: &[(u32, usize)], k: usize, f: &mut impl FnMut(&[u32])) {
    fn rec(
        roots: &[(u32, usize)],
        start: usize,
        need: usize,
        scratch: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        if need == 0 {
            f(scratch);
            return;
        }
        for i in start..roots.len() {
            let (root, avail) = roots[i];
            // Current multiplicity of this root in the scratch prefix.
            let used = scratch.iter().rev().take_while(|&&r| r == root).count();
            if used >= avail {
                continue;
            }
            scratch.push(root);
            rec(roots, i, need - 1, scratch, f);
            scratch.pop();
        }
    }
    let mut scratch = Vec::with_capacity(k);
    rec(roots, 0, k, &mut scratch, f);
}

/// Metric names for candidate-counter probe accounting, split by the
/// backing structure so hashmap and hashtree runs are comparable
/// (Figure 15's per-node probe series).
pub(crate) fn counter_probe_metrics(kind: CounterKind) -> (&'static str, &'static str) {
    match kind {
        CounterKind::HashMap => ("counter.hashmap.probes", "counter.hashmap.hits"),
        CounterKind::HashTree => ("counter.hashtree.probes", "counter.hashtree.hits"),
    }
}

/// Records a freshly built counter's arena footprint (`counter.arena.*`,
/// one observation per counter per pass); no-op for non-arena counters.
pub(crate) fn record_arena_obs(ctx: &NodeCtx, k: usize, counter: &dyn CandidateCounter) {
    let obs = ctx.obs();
    if !obs.is_enabled() {
        return;
    }
    if let Some(s) = counter.arena_stats() {
        let labels = [("node", ctx.node_id() as u64), ("pass", k as u64)];
        obs.add("counter.arena.nodes", &labels, s.nodes);
        obs.add("counter.arena.edges", &labels, s.edges);
        obs.add("counter.arena.bytes", &labels, s.bytes);
    }
}

/// Records one pass's bookkeeping and ledger deltas into the run's
/// observability sink. Shared by the hierarchical pass loop and the flat
/// baselines so `metrics.json` has one schema.
pub(crate) fn record_pass_obs(ctx: &NodeCtx, info: &NodePassInfo) {
    let obs = ctx.obs();
    if !obs.is_enabled() {
        return;
    }
    let labels = [("node", ctx.node_id() as u64), ("pass", info.k as u64)];
    obs.add("pass.candidates", &labels, info.num_candidates as u64);
    obs.add("pass.duplicated", &labels, info.num_duplicated as u64);
    obs.add("pass.fragments", &labels, info.num_fragments as u64);
    obs.add("pass.large", &labels, info.num_large as u64);
    if info.restored {
        obs.add("pass.restored", &labels, 1);
    }
    let d = &info.delta;
    obs.add("pass.messages_sent", &labels, d.messages_sent);
    obs.add("pass.bytes_sent", &labels, d.bytes_sent);
    obs.add("pass.messages_received", &labels, d.messages_received);
    obs.add("pass.bytes_received", &labels, d.bytes_received);
    obs.add("pass.hash_probes", &labels, d.hash_probes);
    obs.add("pass.cpu_ticks", &labels, d.cpu_ticks);
    obs.add("pass.io_bytes", &labels, d.io_bytes);
    // Workload-distribution histogram (the paper's Figure 16): one
    // observation per node per pass, keyed by pass only, so the spread
    // across nodes is the distribution.
    obs.observe(
        "pass.node_bytes_received",
        &[("pass", info.k as u64)],
        d.bytes_received,
    );
    obs.observe(
        "pass.node_cpu_ticks",
        &[("pass", info.k as u64)],
        d.cpu_ticks,
    );
}

/// Coordinator-side checkpoint write after a completed pass: packages the
/// pass-1 state plus every `L_k` so far. Non-coordinators and runs
/// without a sink are no-ops.
fn store_checkpoint(
    ctx: &NodeCtx,
    persist: &PassPersistence<'_>,
    algorithm: Algorithm,
    p1: &Pass1,
    passes: &[LargePass],
    pass_infos: &[NodePassInfo],
) -> Result<()> {
    let Some(sink) = persist.sink else {
        return Ok(());
    };
    if !ctx.is_coordinator() {
        return Ok(());
    }
    let _checkpoint = ctx.span("checkpoint");
    ctx.obs().add(
        "checkpoint.stored",
        &[("node", ctx.node_id() as u64), ("pass", ctx.current_pass())],
        1,
    );
    let cp_passes = passes
        .iter()
        .map(|lp| {
            let info = pass_infos
                .iter()
                .find(|i| i.k == lp.k)
                .expect("pass info for every completed pass");
            CheckpointPass {
                k: lp.k,
                num_candidates: info.num_candidates,
                num_duplicated: info.num_duplicated,
                num_fragments: info.num_fragments,
                itemsets: lp.itemsets.clone(),
            }
        })
        .collect();
    sink.store(Checkpoint {
        algorithm,
        num_transactions: p1.num_transactions,
        min_support_count: p1.min_support_count,
        item_counts: p1.item_counts.clone(),
        passes: cp_passes,
    })
}

/// Drives the common pass loop on one node. `run_pass` implements the
/// algorithm-specific pass k ≥ 2 and returns the global `L_k` plus its
/// bookkeeping. With `persist.resume_from` set, completed passes are
/// replayed from the checkpoint (zero-delta, `restored` flagged) and
/// mining restarts at the first unfinished pass.
pub(crate) fn node_pass_loop(
    ctx: &NodeCtx,
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
    algorithm: Algorithm,
    persist: &PassPersistence<'_>,
    mut run_pass: impl FnMut(
        &NodeCtx,
        usize,      // k
        &[Itemset], // C_k
        &Pass1,     // thresholds + item counts
    ) -> Result<(Vec<(Itemset, u64)>, usize, usize)>, // (L_k, duplicated, fragments)
) -> Result<NodeOutcome> {
    let resume = persist.resume_from.filter(|cp| !cp.passes.is_empty());
    let (p1, mut passes, mut pass_infos, mut k) = if let Some(cp) = resume {
        // Replay the checkpointed passes without touching the disk: the
        // restored entries carry zero deltas so the report shows no work
        // was redone.
        let p1 = Pass1 {
            num_transactions: cp.num_transactions,
            min_support_count: cp.min_support_count,
            item_counts: cp.item_counts.clone(),
            large: LargePass {
                k: 1,
                itemsets: cp.passes[0].itemsets.clone(),
            },
        };
        let mut pass_infos = Vec::with_capacity(cp.passes.len());
        let mut passes = Vec::with_capacity(cp.passes.len());
        for p in &cp.passes {
            pass_infos.push(NodePassInfo {
                k: p.k,
                num_candidates: p.num_candidates,
                num_duplicated: p.num_duplicated,
                num_fragments: p.num_fragments,
                num_large: p.itemsets.len(),
                restored: true,
                delta: NodeStatsSnapshot::default(),
            });
            record_pass_obs(ctx, pass_infos.last().expect("restored pass info"));
            passes.push(LargePass {
                k: p.k,
                itemsets: p.itemsets.clone(),
            });
        }
        (p1, passes, pass_infos, cp.last_pass() + 1)
    } else {
        let mut pass_infos = Vec::new();
        let last_snap = ctx.stats().snapshot();
        ctx.set_pass(1);
        let p1 = {
            let _pass = ctx.span("pass");
            pass1(ctx, part, tax, params)?
        };
        let snap = ctx.stats().snapshot();
        pass_infos.push(NodePassInfo {
            k: 1,
            num_candidates: tax.num_items() as usize,
            num_duplicated: 0,
            num_fragments: 1,
            num_large: p1.large.itemsets.len(),
            restored: false,
            delta: snap.delta_since(&last_snap),
        });
        record_pass_obs(ctx, pass_infos.last().expect("pass 1 info"));
        let passes = vec![p1.large.clone()];
        store_checkpoint(ctx, persist, algorithm, &p1, &passes, &pass_infos)?;
        (p1, passes, pass_infos, 2)
    };

    let mut last_snap = ctx.stats().snapshot();
    loop {
        if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
            break;
        }
        if let Some(max) = params.max_pass {
            if k > max {
                break;
            }
        }
        let candidates = candidates_for_pass(k, passes.last().expect("nonempty"), tax);
        if candidates.is_empty() {
            break;
        }
        ctx.set_pass(k);
        ctx.stats().add_cpu(candidates.len() as u64);

        let (large, num_duplicated, num_fragments) = {
            let _pass = ctx.span("pass");
            run_pass(ctx, k, &candidates, &p1)?
        };
        let snap = ctx.stats().snapshot();
        pass_infos.push(NodePassInfo {
            k,
            num_candidates: candidates.len(),
            num_duplicated,
            num_fragments,
            num_large: large.len(),
            restored: false,
            delta: snap.delta_since(&last_snap),
        });
        record_pass_obs(ctx, pass_infos.last().expect("pass info"));
        last_snap = snap;

        if large.is_empty() {
            break;
        }
        passes.push(LargePass { k, itemsets: large });
        store_checkpoint(ctx, persist, algorithm, &p1, &passes, &pass_infos)?;
        k += 1;
    }

    passes.retain(|p| !p.itemsets.is_empty());
    Ok(NodeOutcome {
        pass_infos,
        output: MiningOutput {
            algorithm,
            num_transactions: p1.num_transactions,
            min_support_count: p1.min_support_count,
            passes,
        },
    })
}

/// Builds the [`ParallelReport`] from a finished cluster run.
pub(crate) fn assemble_report(
    cluster: &ClusterConfig,
    run: ClusterRun<NodeOutcome>,
) -> ParallelReport {
    let num_nodes = cluster.num_nodes;
    let num_passes = run.results[0].pass_infos.len();
    debug_assert!(run.results.iter().all(|r| r.pass_infos.len() == num_passes));

    let mut pass_reports = Vec::with_capacity(num_passes);
    let mut total_modeled = 0.0;
    for p in 0..num_passes {
        let info = &run.results[0].pass_infos[p];
        let node_deltas: Vec<NodeStatsSnapshot> =
            run.results.iter().map(|r| r.pass_infos[p].delta).collect();
        let modeled_seconds = cluster.cost.execution_seconds(&node_deltas);
        total_modeled += modeled_seconds;
        pass_reports.push(PassReport {
            k: info.k,
            num_candidates: info.num_candidates,
            num_duplicated: info.num_duplicated,
            num_fragments: info.num_fragments,
            num_large: info.num_large,
            restored: info.restored,
            node_deltas,
            modeled_seconds,
        });
    }

    let output = run.results.into_iter().next().expect("node 0").output;
    ParallelReport {
        output,
        num_nodes,
        pass_reports,
        wall: run.wall,
        modeled_seconds: total_modeled,
        node_totals: run.stats,
        degraded: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn k_subsets_pairs_and_triples() {
        let t = ids(&[1, 2, 3, 4]);
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for_each_k_subset(&t, 2, &mut scratch, &mut |s| {
            got.push(s.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], ids(&[1, 2]));
        assert_eq!(got[5], ids(&[3, 4]));

        got.clear();
        for_each_k_subset(&t, 3, &mut scratch, &mut |s| {
            got.push(s.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|s| s.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn k_subsets_of_short_input_is_empty() {
        let mut scratch = Vec::new();
        let mut n = 0;
        for_each_k_subset(&ids(&[1]), 2, &mut scratch, &mut |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn root_key_keeps_multiplicity() {
        // 1 -> {3,4}; 2 -> {5}
        let mut b = TaxonomyBuilder::new(6);
        b.edge(3, 1).unwrap();
        b.edge(4, 1).unwrap();
        b.edge(5, 2).unwrap();
        let tax = b.build().unwrap();
        assert_eq!(&*root_key(&ids(&[3, 4]), &tax), &[1, 1]);
        assert_eq!(&*root_key(&ids(&[4, 5]), &tax), &[1, 2]);
        assert_eq!(&*root_key(&ids(&[5, 3]), &tax), &[1, 2]);
    }

    #[test]
    fn root_multisets_respect_availability() {
        let roots = [(1u32, 2usize), (2, 1)];
        let mut got = Vec::new();
        for_each_root_multiset(&roots, 2, &mut |m| got.push(m.to_vec()));
        // (1,1) allowed (avail 2), (1,2) allowed, (2,2) blocked (avail 1).
        assert_eq!(got, vec![vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn root_multisets_k3() {
        let roots = [(1u32, 3usize), (2, 2)];
        let mut got = Vec::new();
        for_each_root_multiset(&roots, 3, &mut |m| got.push(m.to_vec()));
        assert_eq!(
            got,
            vec![vec![1, 1, 1], vec![1, 1, 2], vec![1, 2, 2], vec![2, 2, 2]]
                .into_iter()
                .filter(|m| m != &vec![2, 2, 2]) // avail(2) = 2
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn candidate_bytes_scale_with_k_and_count() {
        assert_eq!(candidates_bytes(2, 10), 320);
        assert!(candidates_bytes(3, 10) > candidates_bytes(2, 10));
    }
}
