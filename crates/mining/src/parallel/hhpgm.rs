//! H-HPGM and the skew-handling variants (§3.3-§3.4).
//!
//! The defining move: candidates are assigned to nodes by hashing their
//! **root itemset** (each member replaced by the root of its tree). Every
//! generalization of an itemset shares its root itemset, so whole ancestor
//! chains land on one node and no ancestor ever needs to cross the wire.
//! A node ships only the *reduced* transaction — each raw item replaced by
//! its closest-to-bottom large ancestor — and only to the owners of root
//! combinations actually present (the paper's Example 2: 3 items sent
//! where HPGM sends 18).
//!
//! The receiving node re-extends the sub-transaction with (candidate-
//! present) ancestors and counts its local candidates — "increment the
//! sup_cou for the itemset and all its ancestor candidates".
//!
//! With a [`DuplicateGrain`], the hottest candidates (`C_k^D`) are first
//! replicated into every node's free memory and counted locally against
//! each node's *own* transactions (evenly distributed data ⇒ evenly
//! distributed work), with one all-reduce at the end of the pass. Root
//! combinations whose candidates are all duplicated stop being shipped
//! at all.

use crate::candidate::items_in_candidates;
use crate::counter::{build_counter, CandidateCounter};
use crate::parallel::common::{
    assemble_report, candidates_bytes, counter_probe_metrics, for_each_root_multiset, gather_large,
    node_pass_loop, root_key, scan_partition, tags, PassPersistence, BATCH_FLUSH_BYTES,
    POLL_EVERY_TXNS,
};
use crate::parallel::duplicate::{select_duplicates, DuplicateGrain, DuplicateSelection};
use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use crate::sequential::extract_large;
use crate::wire::{for_each_item_list, ItemListBatch};
use gar_cluster::{Cluster, ClusterConfig, NodeCtx};
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::{FxHashSet, ItemId, Itemset, Result};
use std::hash::Hasher;

/// Owner node of a root-itemset key.
fn owner_of_key(key: &[u32], num_nodes: usize) -> usize {
    let mut h = gar_types::FxHasher::default();
    for &r in key {
        h.write_u32(r);
    }
    (h.finish() % num_nodes as u64) as usize
}

/// Enumerates the item choices of one root combination: `parts` gives
/// `(group, multiplicity)` per distinct root; every way of choosing
/// `multiplicity` items from each group yields one candidate probe.
fn enumerate_combo_subsets(
    parts: &[(&[ItemId], usize)],
    scratch: &mut Vec<ItemId>,
    sorted: &mut Vec<ItemId>,
    f: &mut impl FnMut(&[ItemId]),
) {
    fn choose(
        parts: &[(&[ItemId], usize)],
        part: usize,
        start: usize,
        left: usize,
        scratch: &mut Vec<ItemId>,
        sorted: &mut Vec<ItemId>,
        f: &mut impl FnMut(&[ItemId]),
    ) {
        if left == 0 {
            if part + 1 == parts.len() {
                sorted.clear();
                sorted.extend_from_slice(scratch);
                sorted.sort_unstable();
                f(sorted);
            } else {
                choose(parts, part + 1, 0, parts[part + 1].1, scratch, sorted, f);
            }
            return;
        }
        let group = parts[part].0;
        if group.len() - start < left {
            return;
        }
        for (i, &item) in group.iter().enumerate().skip(start) {
            scratch.push(item);
            choose(parts, part, i + 1, left - 1, scratch, sorted, f);
            scratch.pop();
        }
    }
    if parts.is_empty() {
        return;
    }
    scratch.clear();
    choose(parts, 0, 0, parts[0].1, scratch, sorted, f);
}

/// Counts, in one pass over `items` (a local reduced transaction or a
/// received sub-transaction), both counter targets:
///
/// * `dup_counter` for root combinations in `dup_combos` (the replicated
///   `C_k^D`, counted by every node on its own data — pass an empty set
///   on the receive path, where `C_k^D` was already handled by the
///   sender);
/// * `local_counter` for root combinations in `owned_active` (this node's
///   hash partition).
///
/// The items are extended with candidate-present ancestors **once**,
/// grouped by root, and only combinations in either set are enumerated —
/// the aggregate subset enumeration across the cluster therefore happens
/// exactly once per combination ("generate k-itemset from the received
/// items and increment the sup_cou for the itemset and all its ancestor
/// candidates").
///
/// Returns `(work, hits)` — the probe tallies already charged to the
/// ledger — so the caller can aggregate them per pass for the
/// observability counters.
#[allow(clippy::too_many_arguments)]
fn count_combos(
    ctx: &NodeCtx,
    tax: &Taxonomy,
    view: &PrunedView,
    dup_counter: &mut dyn CandidateCounter,
    dup_combos: &FxHashSet<Box<[u32]>>,
    local_counter: &mut dyn CandidateCounter,
    owned_active: &FxHashSet<Box<[u32]>>,
    items: &[ItemId],
    k: usize,
) -> (u64, u64) {
    if (owned_active.is_empty() && dup_combos.is_empty()) || items.is_empty() {
        return (0, 0);
    }
    let ext = view.extend_transaction(tax, items);
    ctx.stats().add_cpu(ext.len() as u64);

    // Group the extended items by root (ancestors share their
    // descendants' root, so groups are per-tree).
    let mut groups: Vec<(u32, Vec<ItemId>)> = Vec::new();
    for &it in &ext {
        let r = tax.root_of(it).raw();
        match groups.iter_mut().find(|(x, _)| *x == r) {
            Some((_, v)) => v.push(it),
            None => groups.push((r, vec![it])),
        }
    }
    groups.sort_unstable_by_key(|(r, _)| *r);
    let roots: Vec<(u32, usize)> = groups.iter().map(|(r, v)| (*r, v.len())).collect();

    let mut work = 0u64;
    let mut hits = 0u64;
    let mut scratch = Vec::with_capacity(k);
    let mut sorted = Vec::with_capacity(k);
    for_each_root_multiset(&roots, k, &mut |combo| {
        work += 1;
        let in_dup = dup_combos.contains(combo);
        let in_owned = owned_active.contains(combo);
        if !in_dup && !in_owned {
            return;
        }
        // Split the combo into (group items, multiplicity) parts.
        let mut parts: Vec<(&[ItemId], usize)> = Vec::with_capacity(k);
        let mut i = 0;
        while i < combo.len() {
            let r = combo[i];
            let mut m = 1;
            while i + m < combo.len() && combo[i + m] == r {
                m += 1;
            }
            let gi = groups
                .binary_search_by_key(&r, |(x, _)| *x)
                .expect("root present");
            parts.push((&groups[gi].1, m));
            i += m;
        }
        enumerate_combo_subsets(&parts, &mut scratch, &mut sorted, &mut |subset| {
            if in_dup {
                let out = dup_counter.probe(subset);
                work += out.work;
                hits += out.hits;
            }
            if in_owned {
                let out = local_counter.probe(subset);
                work += out.work;
                hits += out.hits;
            }
        });
    });
    ctx.stats().add_cpu(work);
    ctx.stats().add_probes(hits);
    (work, hits)
}

/// Runs H-HPGM (grain `None`) or one of the duplication variants over
/// the per-node sources (`sources[n]` is node `n`'s partition — possibly
/// a recovery composite).
pub(crate) fn mine(
    algorithm: Algorithm,
    grain: Option<DuplicateGrain>,
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &PassPersistence<'_>,
) -> Result<ParallelReport> {
    let run = Cluster::run(cluster, |ctx| {
        let part = sources[ctx.node_id()];
        node_pass_loop(
            ctx,
            part,
            tax,
            params,
            algorithm,
            persist,
            |ctx, k, candidates, p1| {
                let n = ctx.num_nodes();
                let me = ctx.node_id();

                // L1 membership mask: defines "large item" for the
                // reduce-to-lowest-large transformation.
                let mut l1 = vec![false; tax.num_items() as usize];
                for (s, _) in &p1.large.itemsets {
                    l1[s.items()[0].index()] = true;
                }

                // Duplicate selection (identical on every node — inputs are
                // all globally agreed).
                let selection = match grain {
                    Some(g) => {
                        let mut load = vec![0u64; n];
                        for c in candidates {
                            load[owner_of_key(&root_key(c.items(), tax), n)] +=
                                candidates_bytes(k, 1);
                        }
                        let max_load = load.iter().copied().max().unwrap_or(0);
                        let budget = ctx.memory_budget().saturating_sub(max_load);
                        select_duplicates(
                            g,
                            candidates,
                            tax,
                            &p1.item_counts,
                            p1.num_transactions,
                            &l1,
                            budget,
                        )
                    }
                    None => DuplicateSelection::none(candidates),
                };

                // Ancestor-extension filter over the *full* candidate set.
                let view = PrunedView::new(tax, items_in_candidates(candidates));

                // My partition of the non-duplicated candidates.
                let mine: Vec<Itemset> = selection
                    .remaining
                    .iter()
                    .filter(|c| owner_of_key(&root_key(c.items(), tax), n) == me)
                    .cloned()
                    .collect();
                let mut local_counter = build_counter(params.counter, k, &mine);
                let mut dup_counter = build_counter(params.counter, k, &selection.duplicated);

                // Root combinations that still have partitioned candidates —
                // only these cause any shipping — and the subset owned here,
                // which is all this node ever enumerates.
                let active: FxHashSet<Box<[u32]>> = selection
                    .remaining
                    .iter()
                    .map(|c| root_key(c.items(), tax))
                    .collect();
                let owned_active: FxHashSet<Box<[u32]>> =
                    mine.iter().map(|c| root_key(c.items(), tax)).collect();
                let dup_combos: FxHashSet<Box<[u32]>> = selection
                    .duplicated
                    .iter()
                    .map(|c| root_key(c.items(), tax))
                    .collect();
                // Receive-path sentinel: C_k^D was already counted by the
                // sender against its own transaction.
                let no_dup: FxHashSet<Box<[u32]>> = FxHashSet::default();

                let mut ex = ctx.exchange();
                let mut txn_no = 0usize;
                let (mut probes, mut hits) = (0u64, 0u64);
                let mut roots_scratch: Vec<(u32, usize)> = Vec::new();
                let mut owner_roots: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
                let mut group_scratch: Vec<ItemId> = Vec::new();
                let mut recv_scratch: Vec<ItemId> = Vec::new();
                let mut batches: Vec<ItemListBatch> =
                    (0..n).map(|_| ItemListBatch::new()).collect();

                scan_partition(ctx, part, |t| {
                    let reduced = tax.reduce_to_lowest_large(t, |it| l1[it.index()]);
                    ctx.stats().add_cpu(t.len() as u64);
                    if reduced.is_empty() {
                        return Ok(());
                    }

                    // One combined local counting pass: C_k^D combos (counted
                    // on every node's own data) and this node's own partition
                    // combos, sharing a single ancestor extension.
                    let (w, h) = count_combos(
                        ctx,
                        tax,
                        &view,
                        dup_counter.as_mut(),
                        &dup_combos,
                        local_counter.as_mut(),
                        &owned_active,
                        &reduced,
                        k,
                    );
                    probes += w;
                    hits += h;

                    // Distinct roots present, with the number of reduced items
                    // under each (availability bound for same-root combos).
                    roots_scratch.clear();
                    for &it in &reduced {
                        let r = tax.root_of(it).raw();
                        match roots_scratch.iter_mut().find(|(x, _)| *x == r) {
                            Some((_, c)) => *c += 1,
                            None => roots_scratch.push((r, 1)),
                        }
                    }
                    roots_scratch.sort_unstable();

                    // Route: every active root k-combination marks its roots
                    // for the owning node.
                    for s in owner_roots.iter_mut() {
                        s.clear();
                    }
                    for_each_root_multiset(&roots_scratch, k, &mut |combo| {
                        ctx.stats().add_cpu(1);
                        if active.contains(combo) {
                            let owner = owner_of_key(combo, n);
                            for &r in combo {
                                owner_roots[owner].insert(r);
                            }
                        }
                    });

                    // Ship sub-transactions to the other owners (this node's
                    // own combinations were counted above).
                    for owner in 0..n {
                        if owner == me || owner_roots[owner].is_empty() {
                            continue;
                        }
                        group_scratch.clear();
                        group_scratch.extend(
                            reduced
                                .iter()
                                .copied()
                                .filter(|&it| owner_roots[owner].contains(&tax.root_of(it).raw())),
                        );
                        let batch = &mut batches[owner];
                        batch.push(&group_scratch);
                        if batch.byte_len() >= BATCH_FLUSH_BYTES {
                            ex.send(owner, tags::ITEMS, batch.take())?;
                        }
                    }

                    txn_no += 1;
                    if txn_no.is_multiple_of(POLL_EVERY_TXNS) {
                        ex.poll(|env| {
                            for_each_item_list(&env.payload, &mut recv_scratch, |list| {
                                let (w, h) = count_combos(
                                    ctx,
                                    tax,
                                    &view,
                                    dup_counter.as_mut(),
                                    &no_dup,
                                    local_counter.as_mut(),
                                    &owned_active,
                                    list,
                                    k,
                                );
                                probes += w;
                                hits += h;
                                Ok(())
                            })
                        })?;
                    }
                    Ok(())
                })?;

                {
                    let _exchange = ctx.span("exchange");
                    for (owner, batch) in batches.iter_mut().enumerate() {
                        if !batch.is_empty() {
                            ex.send(owner, tags::ITEMS, batch.take())?;
                        }
                    }
                    ex.finish(|env| {
                        for_each_item_list(&env.payload, &mut recv_scratch, |list| {
                            let (w, h) = count_combos(
                                ctx,
                                tax,
                                &view,
                                dup_counter.as_mut(),
                                &no_dup,
                                local_counter.as_mut(),
                                &owned_active,
                                list,
                                k,
                            );
                            probes += w;
                            hits += h;
                            Ok(())
                        })
                    })?;
                    // Quiesce the exchange before coordinator gathers start
                    // so no GATHER message can race into a peer's exchange
                    // drain.
                    ctx.barrier()?;
                }

                let (pname, hname) = counter_probe_metrics(params.counter);
                let labels = [("node", me as u64), ("pass", k as u64)];
                ctx.obs().add(pname, &labels, probes);
                ctx.obs().add(hname, &labels, hits);

                let _count = ctx.span("count");
                // Partitioned candidates: local decision + coordinator merge.
                let local_large = extract_large(local_counter, p1.min_support_count);
                let mut large = gather_large(ctx, k, local_large)?;

                // Duplicated candidates: one all-reduce, decided everywhere.
                if !selection.duplicated.is_empty() {
                    let global = ctx.all_reduce_u64(dup_counter.counts())?;
                    dup_counter.set_counts(&global);
                    large.extend(extract_large(dup_counter, p1.min_support_count));
                    large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
                }
                Ok((large, selection.duplicated.len(), 1))
            },
        )
    })?;
    Ok(assemble_report(cluster, run))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn collect_subsets(parts: &[(&[ItemId], usize)]) -> Vec<Vec<ItemId>> {
        let mut scratch = Vec::new();
        let mut sorted = Vec::new();
        let mut out = Vec::new();
        enumerate_combo_subsets(parts, &mut scratch, &mut sorted, &mut |s| {
            out.push(s.to_vec())
        });
        out
    }

    #[test]
    fn combo_subsets_cross_product_of_two_groups() {
        let g1 = ids(&[5, 9]);
        let g2 = ids(&[7]);
        let subsets = collect_subsets(&[(&g1, 1), (&g2, 1)]);
        assert_eq!(subsets, vec![ids(&[5, 7]), ids(&[7, 9])]);
    }

    #[test]
    fn combo_subsets_within_one_group() {
        let g = ids(&[1, 4, 8]);
        let subsets = collect_subsets(&[(&g, 2)]);
        assert_eq!(subsets, vec![ids(&[1, 4]), ids(&[1, 8]), ids(&[4, 8])]);
    }

    #[test]
    fn combo_subsets_mixed_multiplicities() {
        let g1 = ids(&[2, 6]);
        let g2 = ids(&[3, 5]);
        // Choose 2 from g1, 1 from g2: 1 * 2 = 2 subsets, always sorted.
        let subsets = collect_subsets(&[(&g1, 2), (&g2, 1)]);
        assert_eq!(subsets, vec![ids(&[2, 3, 6]), ids(&[2, 5, 6])]);
        for s in &subsets {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn combo_subsets_insufficient_group_yields_nothing() {
        let g = ids(&[1]);
        assert!(collect_subsets(&[(&g, 2)]).is_empty());
        assert!(collect_subsets(&[]).is_empty());
    }

    #[test]
    fn owner_of_key_is_stable_and_bounded() {
        for n in 1..8 {
            let o = owner_of_key(&[3, 7], n);
            assert!(o < n);
            assert_eq!(o, owner_of_key(&[3, 7], n));
        }
        // Multiplicity matters: (r) vs (r, r) are distinct keys.
        let a = owner_of_key(&[5], 64);
        let b = owner_of_key(&[5, 5], 64);
        assert!(a < 64 && b < 64);
    }
}
