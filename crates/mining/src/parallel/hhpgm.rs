//! H-HPGM and the skew-handling variants (§3.3-§3.4).
//!
//! The defining move: candidates are assigned to nodes by hashing their
//! **root itemset** (each member replaced by the root of its tree). Every
//! generalization of an itemset shares its root itemset, so whole ancestor
//! chains land on one node and no ancestor ever needs to cross the wire.
//! A node ships only the *reduced* transaction — each raw item replaced by
//! its closest-to-bottom large ancestor — and only to the owners of root
//! combinations actually present (the paper's Example 2: 3 items sent
//! where HPGM sends 18).
//!
//! The receiving node re-extends the sub-transaction with (candidate-
//! present) ancestors and counts its local candidates — "increment the
//! sup_cou for the itemset and all its ancestor candidates".
//!
//! With a [`DuplicateGrain`], the hottest candidates (`C_k^D`) are first
//! replicated into every node's free memory and counted locally against
//! each node's *own* transactions (evenly distributed data ⇒ evenly
//! distributed work), with one all-reduce at the end of the pass. Root
//! combinations whose candidates are all duplicated stop being shipped
//! at all.

use crate::candidate::items_in_candidates;
use crate::counter::{build_counter, CandidateCounter};
use crate::parallel::common::{
    assemble_report, candidates_bytes, counter_probe_metrics, for_each_root_multiset, gather_large,
    node_pass_loop, record_arena_obs, root_key, scan_partition, tags, PassPersistence,
    BATCH_FLUSH_BYTES, POLL_EVERY_TXNS,
};
use crate::parallel::duplicate::{select_duplicates, DuplicateGrain, DuplicateSelection};
use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use crate::sequential::extract_large;
use crate::wire::{for_each_item_list, ItemListBatch};
use gar_cluster::{Cluster, ClusterConfig, NodeCtx};
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::{FxHashSet, ItemId, Itemset, Result};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// Owner node of a root-itemset key.
fn owner_of_key(key: &[u32], num_nodes: usize) -> usize {
    let mut h = gar_types::FxHasher::default();
    for &r in key {
        h.write_u32(r);
    }
    (h.finish() % num_nodes as u64) as usize
}

/// Pass-`k` setup that every replica derives identically from globally
/// agreed inputs (the merged large sets and all-reduced pass-1 counts):
/// the duplicate selection, the ancestor-extension view, the owner of
/// each partitioned candidate, and the set of still-partitioned root
/// combinations.
///
/// On a real cluster each node computes this independently and in
/// parallel — zero communication, one setup's worth of elapsed time. The
/// simulator runs its nodes on shared cores, where N identical
/// computations would serialize and charge the wall clock N× for work
/// the modeled ledgers (correctly) price once; so the first node to
/// reach pass `k` computes the setup and the rest share it.
struct PassSetup {
    selection: DuplicateSelection,
    view: PrunedView,
    /// Owner node of `selection.remaining[i]`.
    owners: Vec<u32>,
    /// Root combinations that still have partitioned candidates.
    active: FxHashSet<Box<[u32]>>,
    /// L1 membership mask: defines "large item" for reduce-to-lowest-large.
    l1: Vec<bool>,
}

fn build_pass_setup(
    grain: Option<DuplicateGrain>,
    k: usize,
    candidates: &[Itemset],
    tax: &Taxonomy,
    num_nodes: usize,
    memory_budget: u64,
    p1: &crate::parallel::common::Pass1,
) -> PassSetup {
    let mut l1 = vec![false; tax.num_items() as usize];
    for (s, _) in &p1.large.itemsets {
        l1[s.items()[0].index()] = true;
    }

    let selection = match grain {
        Some(g) => {
            let mut load = vec![0u64; num_nodes];
            for c in candidates {
                load[owner_of_key(&root_key(c.items(), tax), num_nodes)] += candidates_bytes(k, 1);
            }
            let max_load = load.iter().copied().max().unwrap_or(0);
            let budget = memory_budget.saturating_sub(max_load);
            select_duplicates(
                g,
                candidates,
                tax,
                &p1.item_counts,
                p1.num_transactions,
                &l1,
                budget,
            )
        }
        None => DuplicateSelection::none(candidates),
    };

    let view = PrunedView::new(tax, items_in_candidates(candidates));

    let mut owners = Vec::with_capacity(selection.remaining.len());
    let mut active: FxHashSet<Box<[u32]>> = FxHashSet::default();
    for c in &selection.remaining {
        let key = root_key(c.items(), tax);
        owners.push(owner_of_key(&key, num_nodes) as u32);
        active.insert(key);
    }

    PassSetup {
        selection,
        view,
        owners,
        active,
        l1,
    }
}

/// Counts, in one pass over `items` (a local reduced transaction or a
/// received sub-transaction), this node's two counter targets: the
/// replicated `C_k^D` (`dup_counter`, counted by every node against its
/// *own* data — `None` on the receive path, where the sender already
/// counted it) and this node's hash partition (`local_counter`).
///
/// The items are extended with candidate-present ancestors **once**, then
/// each counter walks the extended transaction and its tree jointly
/// ("generate k-itemset from the received items and increment the sup_cou
/// for the itemset and all its ancestor candidates"). Each tree holds
/// exactly the candidates its ownership class admits, so the joint walk
/// counts precisely what per-combination subset enumeration would — while
/// never expanding a subset that matches no candidate prefix.
///
/// Returns `(work, hits)` — the walk tallies already charged to the
/// ledger — so the caller can aggregate them per pass for the
/// observability counters.
fn count_combos(
    ctx: &NodeCtx,
    tax: &Taxonomy,
    view: &PrunedView,
    dup_counter: Option<&mut dyn CandidateCounter>,
    local_counter: &mut dyn CandidateCounter,
    items: &[ItemId],
    ext: &mut Vec<ItemId>,
) -> (u64, u64) {
    if items.is_empty() {
        return (0, 0);
    }
    view.extend_transaction_into(tax, items, ext);
    ctx.stats().add_cpu(ext.len() as u64);

    let mut work = 0u64;
    let mut hits = 0u64;
    if let Some(dup) = dup_counter {
        let out = dup.count_transaction(ext);
        work += out.work;
        hits += out.hits;
    }
    let out = local_counter.count_transaction(ext);
    work += out.work;
    hits += out.hits;
    ctx.stats().add_cpu(work);
    ctx.stats().add_probes(hits);
    (work, hits)
}

/// Runs H-HPGM (grain `None`) or one of the duplication variants over
/// the per-node sources (`sources[n]` is node `n`'s partition — possibly
/// a recovery composite).
pub(crate) fn mine(
    algorithm: Algorithm,
    grain: Option<DuplicateGrain>,
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &PassPersistence<'_>,
) -> Result<ParallelReport> {
    let setups: Mutex<HashMap<usize, Arc<PassSetup>>> = Mutex::new(HashMap::new());
    let run = Cluster::run(cluster, |ctx| {
        let part = sources[ctx.node_id()];
        node_pass_loop(
            ctx,
            part,
            tax,
            params,
            algorithm,
            persist,
            |ctx, k, candidates, p1| {
                let n = ctx.num_nodes();
                let me = ctx.node_id();

                // Replica-identical pass setup: computed by the first node
                // to reach pass k, shared by the rest (see [`PassSetup`]).
                let setup = {
                    let mut m = setups.lock().unwrap();
                    match m.get(&k) {
                        Some(s) => Arc::clone(s),
                        None => {
                            let s = Arc::new(build_pass_setup(
                                grain,
                                k,
                                candidates,
                                tax,
                                n,
                                ctx.memory_budget(),
                                p1,
                            ));
                            m.insert(k, Arc::clone(&s));
                            s
                        }
                    }
                };
                let PassSetup {
                    selection,
                    view,
                    owners,
                    active,
                    l1,
                } = &*setup;

                // My partition of the non-duplicated candidates.
                let mine: Vec<Itemset> = selection
                    .remaining
                    .iter()
                    .zip(owners)
                    .filter(|(_, &o)| o as usize == me)
                    .map(|(c, _)| c.clone())
                    .collect();
                let mut local_counter = build_counter(params.counter, k, &mine);
                let mut dup_counter = build_counter(params.counter, k, &selection.duplicated);
                record_arena_obs(ctx, k, local_counter.as_ref());
                record_arena_obs(ctx, k, dup_counter.as_ref());

                let mut ex = ctx.exchange();
                let mut txn_no = 0usize;
                let (mut probes, mut hits) = (0u64, 0u64);
                let mut roots_scratch: Vec<(u32, usize)> = Vec::new();
                let mut owner_roots: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
                let mut group_scratch: Vec<ItemId> = Vec::new();
                let mut recv_scratch: Vec<ItemId> = Vec::new();
                let mut reduced: Vec<ItemId> = Vec::new();
                let mut ext_scratch: Vec<ItemId> = Vec::new();
                let mut batches: Vec<ItemListBatch> =
                    (0..n).map(|_| ItemListBatch::new()).collect();

                scan_partition(ctx, part, |t| {
                    tax.reduce_to_lowest_large_into(t, |it| l1[it.index()], &mut reduced);
                    ctx.stats().add_cpu(t.len() as u64);
                    if reduced.is_empty() {
                        return Ok(());
                    }

                    // One combined local counting pass: the replicated C_k^D
                    // (counted on every node's own data) and this node's own
                    // partition, sharing a single ancestor extension.
                    let (w, h) = count_combos(
                        ctx,
                        tax,
                        view,
                        Some(dup_counter.as_mut()),
                        local_counter.as_mut(),
                        &reduced,
                        &mut ext_scratch,
                    );
                    probes += w;
                    hits += h;

                    // Distinct roots present, with the number of reduced items
                    // under each (availability bound for same-root combos).
                    roots_scratch.clear();
                    for &it in &reduced {
                        let r = tax.root_of(it).raw();
                        match roots_scratch.iter_mut().find(|(x, _)| *x == r) {
                            Some((_, c)) => *c += 1,
                            None => roots_scratch.push((r, 1)),
                        }
                    }
                    roots_scratch.sort_unstable();

                    // Route: every active root k-combination marks its roots
                    // for the owning node.
                    for s in owner_roots.iter_mut() {
                        s.clear();
                    }
                    for_each_root_multiset(&roots_scratch, k, &mut |combo| {
                        ctx.stats().add_cpu(1);
                        if active.contains(combo) {
                            let owner = owner_of_key(combo, n);
                            for &r in combo {
                                owner_roots[owner].insert(r);
                            }
                        }
                    });

                    // Ship sub-transactions to the other owners (this node's
                    // own combinations were counted above).
                    for owner in 0..n {
                        if owner == me || owner_roots[owner].is_empty() {
                            continue;
                        }
                        group_scratch.clear();
                        group_scratch.extend(
                            reduced
                                .iter()
                                .copied()
                                .filter(|&it| owner_roots[owner].contains(&tax.root_of(it).raw())),
                        );
                        let batch = &mut batches[owner];
                        batch.push(&group_scratch);
                        if batch.byte_len() >= BATCH_FLUSH_BYTES {
                            ex.send(owner, tags::ITEMS, batch.take())?;
                        }
                    }

                    txn_no += 1;
                    if txn_no.is_multiple_of(POLL_EVERY_TXNS) {
                        // Receive path: C_k^D was already counted by the
                        // sender against its own transaction, so only the
                        // local partition counts here.
                        ex.poll(|env| {
                            for_each_item_list(&env.payload, &mut recv_scratch, |list| {
                                let (w, h) = count_combos(
                                    ctx,
                                    tax,
                                    view,
                                    None,
                                    local_counter.as_mut(),
                                    list,
                                    &mut ext_scratch,
                                );
                                probes += w;
                                hits += h;
                                Ok(())
                            })
                        })?;
                    }
                    Ok(())
                })?;

                {
                    let _exchange = ctx.span("exchange");
                    for (owner, batch) in batches.iter_mut().enumerate() {
                        if !batch.is_empty() {
                            ex.send(owner, tags::ITEMS, batch.take())?;
                        }
                    }
                    ex.finish(|env| {
                        for_each_item_list(&env.payload, &mut recv_scratch, |list| {
                            let (w, h) = count_combos(
                                ctx,
                                tax,
                                view,
                                None,
                                local_counter.as_mut(),
                                list,
                                &mut ext_scratch,
                            );
                            probes += w;
                            hits += h;
                            Ok(())
                        })
                    })?;
                    // Quiesce the exchange before coordinator gathers start
                    // so no GATHER message can race into a peer's exchange
                    // drain.
                    ctx.barrier()?;
                }

                let (pname, hname) = counter_probe_metrics(params.counter);
                let labels = [("node", me as u64), ("pass", k as u64)];
                ctx.obs().add(pname, &labels, probes);
                ctx.obs().add(hname, &labels, hits);

                let _count = ctx.span("count");
                // Partitioned candidates: local decision + coordinator merge.
                let local_large = extract_large(local_counter, p1.min_support_count);
                let mut large = gather_large(ctx, k, local_large)?;

                // Duplicated candidates: one all-reduce, decided everywhere.
                if !selection.duplicated.is_empty() {
                    let global = ctx.all_reduce_u64(dup_counter.counts())?;
                    dup_counter.set_counts(&global);
                    large.extend(extract_large(dup_counter, p1.min_support_count));
                    large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
                }
                Ok((large, selection.duplicated.len(), 1))
            },
        )
    })?;
    Ok(assemble_report(cluster, run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_of_key_is_stable_and_bounded() {
        for n in 1..8 {
            let o = owner_of_key(&[3, 7], n);
            assert!(o < n);
            assert_eq!(o, owner_of_key(&[3, 7], n));
        }
        // Multiplicity matters: (r) vs (r, r) are distinct keys.
        let a = owner_of_key(&[5], 64);
        let b = owner_of_key(&[5, 5], 64);
        assert!(a < 64 && b < 64);
    }
}
