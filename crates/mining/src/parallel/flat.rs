//! Non-hierarchical parallel baselines: CD and HPA.
//!
//! The paper's introduction positions its algorithms against the earlier
//! flat (taxonomy-free) parallel miners: **CD** (Count Distribution,
//! Agrawal & Shafer [AS96]) replicates the candidates and all-reduces
//! counts — NPGM without the hierarchy — while **HPA** (Hash Partitioned
//! Apriori, the authors' own [SK96]) hash-partitions the candidates and
//! ships generated k-itemsets — the algorithm HPGM generalizes. Both are
//! implemented here so the lineage can be measured: on flat data they are
//! the exact baselines; on hierarchical data they mine leaf-level rules
//! only (see [`crate::sequential::apriori`]).

use crate::candidate::{generate_candidates, generate_pairs};
use crate::counter::build_counter;
use crate::parallel::common::{
    candidates_bytes, counter_probe_metrics, for_each_k_subset, gather_large, record_arena_obs,
    record_pass_obs, scan_partition, tags, NodePassInfo, BATCH_FLUSH_BYTES, POLL_EVERY_TXNS,
};
use crate::params::MiningParams;
use crate::report::{LargePass, MiningOutput, ParallelReport, PassReport};
use crate::sequential::{extract_large, large_items_from_counts};
use crate::wire::{for_each_itemset, ItemsetBatch};
use gar_cluster::{Cluster, ClusterConfig, ClusterRun, NodeStatsSnapshot};
use gar_storage::PartitionedDatabase;
use gar_types::{Error, ItemId, Itemset, Result};
use std::hash::Hasher;

/// The flat parallel algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatAlgorithm {
    /// Count Distribution [AS96]: replicated candidates, all-reduced
    /// counts, no data exchange (fragments under memory pressure, like
    /// NPGM).
    CountDistribution,
    /// Hash Partitioned Apriori [SK96]: candidates hash-partitioned by
    /// itemset, generated k-itemsets shipped to their owners.
    Hpa,
}

impl FlatAlgorithm {
    /// The published name.
    pub fn name(&self) -> &'static str {
        match self {
            FlatAlgorithm::CountDistribution => "CD",
            FlatAlgorithm::Hpa => "HPA",
        }
    }
}

fn owner_of(items: &[ItemId], num_nodes: usize) -> usize {
    let mut h = gar_types::FxHasher::default();
    for it in items {
        h.write_u32(it.raw());
    }
    (h.finish() % num_nodes as u64) as usize
}

struct NodeOutcome {
    pass_infos: Vec<(usize, usize, usize, usize, NodeStatsSnapshot)>,
    output: MiningOutput,
}

/// Adapts the flat loop's tuple bookkeeping to the shared
/// [`record_pass_obs`] schema so `metrics.json` looks the same for CD/HPA
/// as for the hierarchical algorithms.
fn record_flat_pass_obs(
    ctx: &gar_cluster::NodeCtx,
    &(k, cands, fragments, large, delta): &(usize, usize, usize, usize, NodeStatsSnapshot),
) {
    record_pass_obs(
        ctx,
        &NodePassInfo {
            k,
            num_candidates: cands,
            num_duplicated: 0,
            num_fragments: fragments,
            num_large: large,
            restored: false,
            delta,
        },
    );
}

/// Runs a flat parallel algorithm over `db` (items `0..num_items`, no
/// taxonomy).
pub fn mine_parallel_flat(
    algorithm: FlatAlgorithm,
    db: &PartitionedDatabase,
    num_items: u32,
    params: &MiningParams,
    cluster: &ClusterConfig,
) -> Result<ParallelReport> {
    params.validate()?;
    cluster.validate()?;
    if db.num_partitions() != cluster.num_nodes {
        return Err(Error::InvalidConfig(format!(
            "database has {} partitions but the cluster has {} nodes",
            db.num_partitions(),
            cluster.num_nodes
        )));
    }

    let run: ClusterRun<NodeOutcome> = Cluster::run(cluster, |ctx| {
        let part = db.partition(ctx.node_id());
        let mut pass_infos = Vec::new();
        let mut last_snap = ctx.stats().snapshot();

        // Pass 1: dense item counts, all-reduced.
        ctx.set_pass(1);
        let (num_transactions, min_support_count, l1) = {
            let _pass = ctx.span("pass");
            let num_transactions = ctx.all_reduce_u64(&[part.num_transactions() as u64])?[0];
            let min_support_count = params.min_support_count(num_transactions);
            let mut counts = vec![0u64; num_items as usize];
            scan_partition(ctx, part, |t| {
                ctx.stats().add_cpu(t.len() as u64);
                for it in t {
                    counts[it.index()] += 1;
                }
                Ok(())
            })?;
            let _count = ctx.span("count");
            let global = ctx.all_reduce_u64(&counts)?;
            let l1 = large_items_from_counts(&global, min_support_count);
            (num_transactions, min_support_count, l1)
        };
        let snap = ctx.stats().snapshot();
        pass_infos.push((
            1,
            num_items as usize,
            1,
            l1.itemsets.len(),
            snap.delta_since(&last_snap),
        ));
        last_snap = snap;
        record_flat_pass_obs(ctx, pass_infos.last().expect("pass 1 info"));

        let mut passes = vec![l1];
        let mut k = 2;
        loop {
            if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
                break;
            }
            if let Some(max) = params.max_pass {
                if k > max {
                    break;
                }
            }
            let prev = &passes.last().expect("nonempty").itemsets;
            let candidates: Vec<Itemset> = if k == 2 {
                let l1_items: Vec<ItemId> = prev.iter().map(|(s, _)| s.items()[0]).collect();
                generate_pairs(&l1_items, None)
            } else {
                let prev_sets: Vec<Itemset> = prev.iter().map(|(s, _)| s.clone()).collect();
                generate_candidates(&prev_sets)
            };
            if candidates.is_empty() {
                break;
            }
            ctx.stats().add_cpu(candidates.len() as u64);
            ctx.set_pass(k);
            let _pass = ctx.span("pass");
            let (mut probes, mut hits) = (0u64, 0u64);

            let (large, fragments) = match algorithm {
                FlatAlgorithm::CountDistribution => {
                    let total = candidates_bytes(k, candidates.len());
                    let fragments = (total.div_ceil(ctx.memory_budget())).max(1) as usize;
                    let frag_len = candidates.len().div_ceil(fragments).max(1);
                    let mut large = Vec::new();
                    for fragment in candidates.chunks(frag_len) {
                        let mut counter = build_counter(params.counter, k, fragment);
                        record_arena_obs(ctx, k, counter.as_ref());
                        scan_partition(ctx, part, |t| {
                            let out = counter.count_transaction(t);
                            ctx.stats().add_cpu(out.work);
                            ctx.stats().add_probes(out.hits);
                            probes += out.work;
                            hits += out.hits;
                            Ok(())
                        })?;
                        let _count = ctx.span("count");
                        let global = ctx.all_reduce_u64(counter.counts())?;
                        counter.set_counts(&global);
                        large.extend(extract_large(counter, min_support_count));
                    }
                    large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
                    (large, fragments)
                }
                FlatAlgorithm::Hpa => {
                    let n = ctx.num_nodes();
                    let me = ctx.node_id();
                    let mine: Vec<Itemset> = candidates
                        .iter()
                        .filter(|c| owner_of(c.items(), n) == me)
                        .cloned()
                        .collect();
                    let mut counter = build_counter(params.counter, k, &mine);
                    record_arena_obs(ctx, k, counter.as_ref());
                    let mut batches: Vec<ItemsetBatch> =
                        (0..n).map(|_| ItemsetBatch::new(k)).collect();
                    let mut ex = ctx.exchange();
                    let mut scratch = Vec::with_capacity(k);
                    let mut txn_no = 0usize;
                    scan_partition(ctx, part, |t| {
                        for_each_k_subset(t, k, &mut scratch, &mut |subset| {
                            ctx.stats().add_cpu(1);
                            let owner = owner_of(subset, n);
                            if owner == me {
                                let out = counter.probe(subset);
                                ctx.stats().add_probes(out.hits);
                                probes += out.work.max(1);
                                hits += out.hits;
                            } else {
                                let batch = &mut batches[owner];
                                batch.push(subset);
                                if batch.byte_len() >= BATCH_FLUSH_BYTES {
                                    ex.send(owner, tags::ITEMSETS, batch.take())?;
                                }
                            }
                            Ok(())
                        })?;
                        txn_no += 1;
                        if txn_no.is_multiple_of(POLL_EVERY_TXNS) {
                            ex.poll(|env| {
                                for_each_itemset(&env.payload, k, |s| {
                                    let out = counter.probe(s);
                                    ctx.stats().add_cpu(1);
                                    ctx.stats().add_probes(out.hits);
                                    probes += out.work.max(1);
                                    hits += out.hits;
                                    Ok(())
                                })
                            })?;
                        }
                        Ok(())
                    })?;
                    {
                        let _exchange = ctx.span("exchange");
                        for (owner, batch) in batches.iter_mut().enumerate() {
                            if !batch.is_empty() {
                                ex.send(owner, tags::ITEMSETS, batch.take())?;
                            }
                        }
                        ex.finish(|env| {
                            for_each_itemset(&env.payload, k, |s| {
                                let out = counter.probe(s);
                                ctx.stats().add_cpu(1);
                                ctx.stats().add_probes(out.hits);
                                probes += out.work.max(1);
                                hits += out.hits;
                                Ok(())
                            })
                        })?;
                        ctx.barrier()?;
                    }
                    let _count = ctx.span("count");
                    let local_large = extract_large(counter, min_support_count);
                    (gather_large(ctx, k, local_large)?, 1)
                }
            };

            let (pname, hname) = counter_probe_metrics(params.counter);
            let labels = [("node", ctx.node_id() as u64), ("pass", k as u64)];
            ctx.obs().add(pname, &labels, probes);
            ctx.obs().add(hname, &labels, hits);

            let snap = ctx.stats().snapshot();
            pass_infos.push((
                k,
                candidates.len(),
                fragments,
                large.len(),
                snap.delta_since(&last_snap),
            ));
            last_snap = snap;
            record_flat_pass_obs(ctx, pass_infos.last().expect("pass info"));
            if large.is_empty() {
                break;
            }
            passes.push(LargePass { k, itemsets: large });
            k += 1;
        }

        passes.retain(|p| !p.itemsets.is_empty());
        Ok(NodeOutcome {
            pass_infos,
            output: MiningOutput {
                algorithm: crate::params::Algorithm::Apriori,
                num_transactions,
                min_support_count,
                passes,
            },
        })
    })?;

    // Assemble the report (same shape as the hierarchical algorithms').
    let num_passes = run.results[0].pass_infos.len();
    let mut pass_reports = Vec::with_capacity(num_passes);
    let mut total_modeled = 0.0;
    for p in 0..num_passes {
        let (k, cands, fragments, large, _) = run.results[0].pass_infos[p];
        let node_deltas: Vec<NodeStatsSnapshot> =
            run.results.iter().map(|r| r.pass_infos[p].4).collect();
        let modeled_seconds = cluster.cost.execution_seconds(&node_deltas);
        total_modeled += modeled_seconds;
        pass_reports.push(PassReport {
            k,
            num_candidates: cands,
            num_duplicated: 0,
            num_fragments: fragments,
            num_large: large,
            restored: false,
            node_deltas,
            modeled_seconds,
        });
    }
    let output = run.results.into_iter().next().expect("node 0").output;
    Ok(ParallelReport {
        output,
        num_nodes: cluster.num_nodes,
        pass_reports,
        wall: run.wall,
        modeled_seconds: total_modeled,
        node_totals: run.stats,
        degraded: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::apriori;

    fn flat_txns(seed: u64) -> Vec<Vec<ItemId>> {
        // Deterministic pseudo-random flat transactions over 40 items.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..400)
            .map(|_| {
                let len = 2 + (next() % 6) as usize;
                let mut t: Vec<ItemId> = (0..len).map(|_| ItemId((next() % 40) as u32)).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect()
    }

    #[test]
    fn cd_and_hpa_match_sequential_apriori() {
        let txns = flat_txns(3);
        let seq_db = PartitionedDatabase::build_in_memory(1, txns.clone().into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.05);
        let expected = apriori(seq_db.partition(0), 40, &params).unwrap();
        assert!(expected.num_large() > 10, "dataset too sparse");

        let db = PartitionedDatabase::build_in_memory(4, txns.into_iter()).unwrap();
        let cluster = ClusterConfig::new(4, 1 << 24);
        for alg in [FlatAlgorithm::CountDistribution, FlatAlgorithm::Hpa] {
            let rep = mine_parallel_flat(alg, &db, 40, &params, &cluster)
                .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
            assert_eq!(
                rep.output.num_large(),
                expected.num_large(),
                "{}",
                alg.name()
            );
            for (a, b) in rep.output.all_large().zip(expected.all_large()) {
                assert_eq!(a, b, "{}", alg.name());
            }
        }
    }

    #[test]
    fn cd_fragments_under_memory_pressure() {
        let txns = flat_txns(7);
        let db = PartitionedDatabase::build_in_memory(2, txns.into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.02).max_pass(2);
        let tight = ClusterConfig::new(2, 1024);
        let rep =
            mine_parallel_flat(FlatAlgorithm::CountDistribution, &db, 40, &params, &tight).unwrap();
        assert!(rep.pass_reports[1].num_fragments > 1);
    }

    #[test]
    fn hpa_traffic_scales_with_data_cd_with_candidates() {
        // The structural difference: CD's only traffic is the count
        // all-reduce (independent of |D|); HPA ships generated itemsets
        // (linear in |D|). Doubling the data must roughly double HPA's
        // bytes and leave CD's unchanged.
        let params = MiningParams::with_min_support(0.02).max_pass(2);
        let cluster = ClusterConfig::new(3, 1 << 24);
        let pass2_bytes = |alg: FlatAlgorithm, copies: usize| -> u64 {
            let txns: Vec<Vec<ItemId>> = std::iter::repeat_n(flat_txns(11), copies)
                .flatten()
                .collect();
            let db = PartitionedDatabase::build_in_memory(3, txns.into_iter()).unwrap();
            let rep = mine_parallel_flat(alg, &db, 40, &params, &cluster).unwrap();
            rep.pass_reports[1]
                .node_deltas
                .iter()
                .map(|d| d.bytes_sent)
                .sum()
        };
        let cd_1 = pass2_bytes(FlatAlgorithm::CountDistribution, 1);
        let cd_2 = pass2_bytes(FlatAlgorithm::CountDistribution, 2);
        assert_eq!(cd_1, cd_2, "CD traffic must not scale with data");
        let hpa_1 = pass2_bytes(FlatAlgorithm::Hpa, 1);
        let hpa_2 = pass2_bytes(FlatAlgorithm::Hpa, 2);
        assert!(
            hpa_2 as f64 > 1.5 * hpa_1 as f64,
            "HPA traffic should scale with data: {hpa_1} -> {hpa_2}"
        );
    }

    #[test]
    fn single_node_flat_runs() {
        let txns = flat_txns(1);
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.05);
        let cluster = ClusterConfig::new(1, 1 << 24);
        for alg in [FlatAlgorithm::CountDistribution, FlatAlgorithm::Hpa] {
            let rep = mine_parallel_flat(alg, &db, 40, &params, &cluster).unwrap();
            assert!(rep.output.num_large() > 0);
            assert_eq!(rep.node_totals[0].bytes_sent, 0);
        }
    }
}
