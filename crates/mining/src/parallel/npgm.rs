//! NPGM — Non Partitioned Generalized association rule Mining (§3.1).
//!
//! Candidates are fully replicated: every node counts its local partition
//! against the whole of `C_k` and the counts are all-reduced. No
//! transaction data ever crosses the interconnect — but when `|C_k|`
//! exceeds a node's memory `M`, the candidates are split into
//! `⌈|C_k|/M⌉` fragments and the *entire local partition is re-scanned
//! once per fragment* (the paper's Figure 2 outer loop). That re-scan
//! multiplier is why NPGM's execution time explodes at small minimum
//! support in Figure 14.

use crate::candidate::items_in_candidates;
use crate::counter::build_counter;
use crate::parallel::common::{
    assemble_report, candidates_bytes, counter_probe_metrics, node_pass_loop, record_arena_obs,
    scan_partition, PassPersistence,
};
use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use crate::sequential::extract_large;
use gar_cluster::{Cluster, ClusterConfig};
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::Result;

/// Runs NPGM over the per-node sources (`sources[n]` is node `n`'s
/// partition — possibly a recovery composite).
pub(crate) fn mine(
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &PassPersistence<'_>,
) -> Result<ParallelReport> {
    let run = Cluster::run(cluster, |ctx| {
        let part = sources[ctx.node_id()];
        node_pass_loop(
            ctx,
            part,
            tax,
            params,
            Algorithm::Npgm,
            persist,
            |ctx, k, candidates, p1| {
                let view = PrunedView::new(tax, items_in_candidates(candidates));

                // Fragment C_k so each piece fits the node memory budget.
                let total_bytes = candidates_bytes(k, candidates.len());
                let num_fragments = (total_bytes.div_ceil(ctx.memory_budget())).max(1) as usize;
                let frag_len = candidates.len().div_ceil(num_fragments);

                let mut large = Vec::new();
                let (mut probes, mut hits) = (0u64, 0u64);
                let mut extended = Vec::new();
                for fragment in candidates.chunks(frag_len.max(1)) {
                    let mut counter = build_counter(params.counter, k, fragment);
                    record_arena_obs(ctx, k, counter.as_ref());
                    scan_partition(ctx, part, |t| {
                        view.extend_transaction_into(tax, t, &mut extended);
                        ctx.stats().add_cpu(extended.len() as u64);
                        let out = counter.count_transaction(&extended);
                        ctx.stats().add_cpu(out.work);
                        ctx.stats().add_probes(out.hits);
                        probes += out.work;
                        hits += out.hits;
                        Ok(())
                    })?;
                    // Paper: "Send the sup_cou of C_k^d to the coordinator
                    // node"; the coordinator decides L_k^d and broadcasts.
                    let _count = ctx.span("count");
                    let global = ctx.all_reduce_u64(counter.counts())?;
                    counter.set_counts(&global);
                    large.extend(extract_large(counter, p1.min_support_count));
                }
                large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
                let (pname, hname) = counter_probe_metrics(params.counter);
                let labels = [("node", ctx.node_id() as u64), ("pass", k as u64)];
                ctx.obs().add(pname, &labels, probes);
                ctx.obs().add(hname, &labels, hits);
                Ok((large, 0, num_fragments))
            },
        )
    })?;
    Ok(assemble_report(cluster, run))
}
