//! HPGM — Hash Partitioned Generalized association rule Mining (§3.2).
//!
//! Candidates are spread over the nodes by hashing the *itemset* — no
//! hierarchy awareness. Each node extends its local transactions with all
//! (candidate-present) ancestors, generates every k-subset, and ships each
//! subset to the node the hash assigns it to (paper Figure 3). The
//! paper's Example 1 shows the consequence: one transaction of 3 items
//! turns into 18 shipped items, because the ancestor itemsets scatter
//! uniformly over the cluster. Table 6 and Figure 13 quantify the damage
//! relative to H-HPGM.

use crate::candidate::items_in_candidates;
use crate::counter::build_counter;
use crate::parallel::common::{
    assemble_report, counter_probe_metrics, for_each_k_subset, gather_large, node_pass_loop,
    record_arena_obs, scan_partition, tags, PassPersistence, BATCH_FLUSH_BYTES, POLL_EVERY_TXNS,
};
use crate::params::{Algorithm, MiningParams};
use crate::report::ParallelReport;
use crate::sequential::extract_large;
use crate::wire::{for_each_itemset, ItemsetBatch};
use gar_cluster::{Cluster, ClusterConfig};
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::{ItemId, Itemset, Result};

/// The hierarchy-blind partitioning function: hash of the itemset's codes.
fn owner_of(items: &[ItemId], num_nodes: usize) -> usize {
    let mut h = gar_types::FxHasher::default();
    use std::hash::Hasher;
    for it in items {
        h.write_u32(it.raw());
    }
    (h.finish() % num_nodes as u64) as usize
}

/// Owner of a candidate [`Itemset`].
fn candidate_owner(c: &Itemset, num_nodes: usize) -> usize {
    owner_of(c.items(), num_nodes)
}

/// Runs HPGM over the per-node sources (`sources[n]` is node `n`'s
/// partition — possibly a recovery composite).
pub(crate) fn mine(
    sources: &[&dyn TransactionSource],
    tax: &Taxonomy,
    params: &MiningParams,
    cluster: &ClusterConfig,
    persist: &PassPersistence<'_>,
) -> Result<ParallelReport> {
    let run = Cluster::run(cluster, |ctx| {
        let part = sources[ctx.node_id()];
        node_pass_loop(
            ctx,
            part,
            tax,
            params,
            Algorithm::Hpgm,
            persist,
            |ctx, k, candidates, p1| {
                let n = ctx.num_nodes();
                let me = ctx.node_id();
                let view = PrunedView::new(tax, items_in_candidates(candidates));

                // C_k^n: candidates whose hash lands on this node.
                let mine: Vec<Itemset> = candidates
                    .iter()
                    .filter(|c| candidate_owner(c, n) == me)
                    .cloned()
                    .collect();
                let mut counter = build_counter(params.counter, k, &mine);
                record_arena_obs(ctx, k, counter.as_ref());

                let mut batches: Vec<ItemsetBatch> = (0..n).map(|_| ItemsetBatch::new(k)).collect();
                let mut ex = ctx.exchange();
                let mut scratch = Vec::with_capacity(k);
                let mut extended = Vec::new();
                let mut decoded = 0usize;
                let mut txn_no = 0usize;
                let (mut probes, mut hits) = (0u64, 0u64);

                scan_partition(ctx, part, |t| {
                    view.extend_transaction_into(tax, t, &mut extended);
                    ctx.stats().add_cpu(extended.len() as u64);
                    for_each_k_subset(&extended, k, &mut scratch, &mut |subset| {
                        ctx.stats().add_cpu(1);
                        let owner = owner_of(subset, n);
                        if owner == me {
                            let out = counter.probe(subset);
                            ctx.stats().add_probes(out.hits);
                            probes += out.work.max(1);
                            hits += out.hits;
                        } else {
                            let batch = &mut batches[owner];
                            batch.push(subset);
                            if batch.byte_len() >= BATCH_FLUSH_BYTES {
                                ex.send(owner, tags::ITEMSETS, batch.take())?;
                            }
                        }
                        Ok(())
                    })?;
                    txn_no += 1;
                    if txn_no.is_multiple_of(POLL_EVERY_TXNS) {
                        ex.poll(|env| {
                            for_each_itemset(&env.payload, k, |s| {
                                let out = counter.probe(s);
                                ctx.stats().add_cpu(1);
                                ctx.stats().add_probes(out.hits);
                                probes += out.work.max(1);
                                hits += out.hits;
                                decoded += 1;
                                Ok(())
                            })
                        })?;
                    }
                    Ok(())
                })?;

                {
                    let _exchange = ctx.span("exchange");
                    for (owner, batch) in batches.iter_mut().enumerate() {
                        if !batch.is_empty() {
                            ex.send(owner, tags::ITEMSETS, batch.take())?;
                        }
                    }
                    ex.finish(|env| {
                        for_each_itemset(&env.payload, k, |s| {
                            let out = counter.probe(s);
                            ctx.stats().add_cpu(1);
                            ctx.stats().add_probes(out.hits);
                            probes += out.work.max(1);
                            hits += out.hits;
                            decoded += 1;
                            Ok(())
                        })
                    })?;
                    // Quiesce the exchange before coordinator gathers start
                    // so no GATHER message can race into a peer's exchange
                    // drain.
                    ctx.barrier()?;
                }

                let (pname, hname) = counter_probe_metrics(params.counter);
                let labels = [("node", me as u64), ("pass", k as u64)];
                ctx.obs().add(pname, &labels, probes);
                ctx.obs().add(hname, &labels, hits);

                // Each node decides its own candidates, the coordinator merges.
                let _count = ctx.span("count");
                let local_large = extract_large(counter, p1.min_support_count);
                let large = gather_large(ctx, k, local_large)?;
                Ok((large, 0, 1))
            },
        )
    })?;
    Ok(assemble_report(cluster, run))
}

/// Exposed for the partitioning unit tests.
#[cfg(test)]
pub(crate) fn owner_for_test(items: &[ItemId], n: usize) -> usize {
    owner_of(items, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        let items: Vec<ItemId> = vec![ItemId(3), ItemId(9)];
        let o = owner_for_test(&items, 7);
        assert!(o < 7);
        assert_eq!(o, owner_for_test(&items, 7));
    }

    #[test]
    fn owners_spread_over_nodes() {
        // 100 distinct pairs over 4 nodes: every node should own some.
        let mut seen = [false; 4];
        for a in 0..10u32 {
            for b in 10..20u32 {
                seen[owner_for_test(&[ItemId(a), ItemId(b)], 4)] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
