//! Duplicate-candidate selection for the skew-handling algorithms
//! (§3.4): H-HPGM-TGD, -PGD, -FGD.
//!
//! All three fill a node's *free* candidate memory (`M` minus the largest
//! H-HPGM partition) with copies of the candidates expected to be hottest,
//! so their support counting happens locally on every node — removing both
//! the communication and the probe hot spot those candidates would
//! otherwise concentrate on one owner. They differ only in the granule:
//!
//! * **Tree** — whole root-itemset groups ("trees"), hottest roots first,
//!   stopping at the first group that does not fit (the paper: "when the
//!   size of free memory is small, H-HPGM-TGD cannot duplicate ... since
//!   it copies the whole hierarchy");
//! * **Path** — hot *leaf-level* candidates plus all their ancestor
//!   candidates, skipping what does not fit and packing on;
//! * **Fine** — hot candidates of *any* level plus ancestors, greedy by
//!   estimated frequency. The finest granule, the best packing — and the
//!   only one that catches hot interior itemsets whose descendants are
//!   individually cold (the paper's stated weakness of PGD).
//!
//! Frequency is estimated from the pass-1 global item counts (`sup_cou` of
//! each item), which every node holds identically, so the selection is
//! deterministic and replica-consistent with zero communication.

use crate::counter::candidate_entry_bytes;
use crate::parallel::common::root_key;
use gar_taxonomy::Taxonomy;
use gar_types::{FxHashMap, FxHashSet, ItemId, Itemset};

/// The duplication granule (one per skew-handling algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicateGrain {
    /// H-HPGM-TGD: whole root-itemset trees.
    Tree,
    /// H-HPGM-PGD: hot leaf-level candidates + ancestor paths.
    Path,
    /// H-HPGM-FGD: hot candidates of any level + ancestors.
    Fine,
}

/// The outcome of duplicate selection.
#[derive(Debug, Clone)]
pub struct DuplicateSelection {
    /// `C_k^D` — candidates replicated on every node, in deterministic
    /// selection order (the order matters: its count vector is
    /// all-reduced).
    pub duplicated: Vec<Itemset>,
    /// The candidates that stay hash-partitioned, in input order.
    pub remaining: Vec<Itemset>,
}

impl DuplicateSelection {
    /// A selection that duplicates nothing (plain H-HPGM).
    pub fn none(candidates: &[Itemset]) -> DuplicateSelection {
        DuplicateSelection {
            duplicated: Vec::new(),
            remaining: candidates.to_vec(),
        }
    }
}

/// Estimated frequency of an itemset: the product of its items' global
/// support fractions (independence assumption — only the *ranking*
/// matters, and item supports are what the paper sorts by too).
fn estimate(items: &[ItemId], item_counts: &[u64], num_transactions: u64) -> f64 {
    let n = (num_transactions.max(1)) as f64;
    items
        .iter()
        .map(|it| item_counts[it.index()] as f64 / n)
        .product()
}

/// Enumerates the ancestor candidates of `c`: every itemset obtained by
/// replacing members with proper ancestors (at least one replacement) that
/// is itself in the candidate index.
fn ancestor_candidates(
    c: &Itemset,
    tax: &Taxonomy,
    index: &FxHashMap<Itemset, usize>,
) -> Vec<Itemset> {
    // Choice list per member: itself + its proper ancestors.
    let choices: Vec<Vec<ItemId>> = c
        .items()
        .iter()
        .map(|&it| {
            let mut v = vec![it];
            v.extend_from_slice(tax.ancestors(it));
            v
        })
        .collect();
    let mut out = Vec::new();
    let mut pick = vec![0usize; choices.len()];
    loop {
        // Skip the all-self combination (that is `c`).
        if pick.iter().any(|&p| p > 0) {
            let items: Vec<ItemId> = pick.iter().zip(&choices).map(|(&p, ch)| ch[p]).collect();
            let set = Itemset::from_unsorted(items);
            if set.len() == c.len() && index.contains_key(&set) {
                out.push(set);
            }
        }
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == pick.len() {
                out.sort_unstable();
                out.dedup();
                return out;
            }
            pick[d] += 1;
            if pick[d] < choices[d].len() {
                break;
            }
            pick[d] = 0;
            d += 1;
        }
    }
}

/// Selects `C_k^D` under `budget_bytes` of per-node free memory.
///
/// `item_counts` are the pass-1 global item supports; `l1` flags which
/// items are large (needed to find the leaf level of the *large* item
/// hierarchy for the Path grain).
pub fn select_duplicates(
    grain: DuplicateGrain,
    candidates: &[Itemset],
    tax: &Taxonomy,
    item_counts: &[u64],
    num_transactions: u64,
    l1: &[bool],
    budget_bytes: u64,
) -> DuplicateSelection {
    if candidates.is_empty() {
        return DuplicateSelection::none(candidates);
    }
    let k = candidates[0].len();
    let entry = candidate_entry_bytes(k);
    if budget_bytes < entry {
        return DuplicateSelection::none(candidates);
    }
    let index: FxHashMap<Itemset, usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), i))
        .collect();

    let mut taken: FxHashSet<usize> = FxHashSet::default();
    let mut duplicated: Vec<Itemset> = Vec::new();
    let mut budget = budget_bytes;

    // Greedy helper: try to take `group` (candidate indices) atomically.
    let try_take = |group: &[usize],
                    taken: &mut FxHashSet<usize>,
                    duplicated: &mut Vec<Itemset>,
                    budget: &mut u64|
     -> bool {
        let fresh: Vec<usize> = group
            .iter()
            .copied()
            .filter(|i| !taken.contains(i))
            .collect();
        let need = fresh.len() as u64 * entry;
        if need == 0 {
            return true;
        }
        if need > *budget {
            return false;
        }
        *budget -= need;
        for i in fresh {
            taken.insert(i);
            duplicated.push(candidates[i].clone());
        }
        true
    };

    match grain {
        DuplicateGrain::Tree => {
            // Group candidates by root itemset; order groups by estimated
            // root-combination frequency; take whole groups until one
            // fails to fit.
            let mut groups: FxHashMap<Box<[u32]>, Vec<usize>> = FxHashMap::default();
            for (i, c) in candidates.iter().enumerate() {
                groups.entry(root_key(c.items(), tax)).or_default().push(i);
            }
            // lint:allow(det-taint): drained into a Vec and sorted just
            // below with a total-order tie-break (`ka.cmp(kb)`).
            let mut ordered: Vec<(Box<[u32]>, Vec<usize>)> = groups.into_iter().collect();
            ordered.sort_by(|(ka, _), (kb, _)| {
                let ra: Vec<ItemId> = ka.iter().map(|&r| ItemId(r)).collect();
                let rb: Vec<ItemId> = kb.iter().map(|&r| ItemId(r)).collect();
                let fa = estimate(&ra, item_counts, num_transactions);
                let fb = estimate(&rb, item_counts, num_transactions);
                fb.partial_cmp(&fa).unwrap().then_with(|| ka.cmp(kb))
            });
            for (_, group) in &ordered {
                if !try_take(group, &mut taken, &mut duplicated, &mut budget) {
                    break; // coarse grain: stop at the first non-fit
                }
            }
        }
        DuplicateGrain::Path | DuplicateGrain::Fine => {
            // Seed pool: for Path, candidates whose members are all
            // leaf-level large items (large with no large descendant);
            // for Fine, every candidate.
            let lowest_large = |it: ItemId| -> bool {
                l1.get(it.index()).copied().unwrap_or(false)
                    && !tax
                        .tree_items(it)
                        .iter()
                        .skip(1)
                        .any(|d| l1.get(d.index()).copied().unwrap_or(false))
            };
            let mut pool: Vec<usize> = (0..candidates.len())
                .filter(|&i| match grain {
                    DuplicateGrain::Path => {
                        candidates[i].items().iter().all(|&it| lowest_large(it))
                    }
                    _ => true,
                })
                .collect();
            pool.sort_by(|&a, &b| {
                let fa = estimate(candidates[a].items(), item_counts, num_transactions);
                let fb = estimate(candidates[b].items(), item_counts, num_transactions);
                fb.partial_cmp(&fa)
                    .unwrap()
                    .then_with(|| candidates[a].cmp(&candidates[b]))
            });
            for &seed in &pool {
                if taken.contains(&seed) {
                    continue;
                }
                let ancestors: Vec<usize> = ancestor_candidates(&candidates[seed], tax, &index)
                    .into_iter()
                    .map(|anc| index[&anc])
                    .collect();
                match grain {
                    DuplicateGrain::Path => {
                        // A path is atomic: the hot leaf itemset together
                        // with its whole generalization chain, or nothing.
                        let mut group = vec![seed];
                        group.extend_from_slice(&ancestors);
                        try_take(&group, &mut taken, &mut duplicated, &mut budget);
                    }
                    _ => {
                        // Fine grain packs candidate by candidate "so that
                        // free space be occupied as much as possible".
                        try_take(&[seed], &mut taken, &mut duplicated, &mut budget);
                        for anc in ancestors {
                            try_take(&[anc], &mut taken, &mut duplicated, &mut budget);
                        }
                    }
                }
                if budget < entry {
                    break; // no room for anything further
                }
            }
        }
    }

    let remaining: Vec<Itemset> = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| !taken.contains(i))
        .map(|(_, c)| c.clone())
        .collect();
    DuplicateSelection {
        duplicated,
        remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    /// The paper's example forest: 1 -> {3,4,5}, 3 -> {7,8}, 4 -> {9,10},
    /// 2 -> {6}, 6 -> {15}.
    fn paper_forest() -> Taxonomy {
        let mut b = TaxonomyBuilder::new(16);
        for (c, p) in [
            (3, 1),
            (4, 1),
            (5, 1),
            (7, 3),
            (8, 3),
            (9, 4),
            (10, 4),
            (6, 2),
            (15, 6),
        ] {
            b.edge(c, p).unwrap();
        }
        b.build().unwrap()
    }

    /// All non-related pairs over the paper's large items, as in Figure 6.
    fn figure6_candidates(tax: &Taxonomy) -> Vec<Itemset> {
        let large: Vec<ItemId> = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15]
            .into_iter()
            .map(ItemId)
            .collect();
        crate::candidate::generate_pairs(&large, Some(tax))
    }

    fn counts_with(tax: &Taxonomy, hot: &[(u32, u64)]) -> Vec<u64> {
        let mut c = vec![10u64; tax.num_items() as usize];
        for &(i, v) in hot {
            c[i as usize] = v;
        }
        c
    }

    fn l1_all(tax: &Taxonomy) -> Vec<bool> {
        let large = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15];
        (0..tax.num_items()).map(|i| large.contains(&i)).collect()
    }

    #[test]
    fn zero_budget_duplicates_nothing() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let sel = select_duplicates(
            DuplicateGrain::Fine,
            &cands,
            &tax,
            &counts_with(&tax, &[]),
            100,
            &l1_all(&tax),
            0,
        );
        assert!(sel.duplicated.is_empty());
        assert_eq!(sel.remaining.len(), cands.len());
    }

    #[test]
    fn tree_grain_takes_whole_hot_tree() {
        // Paper Example 3: Sup(1) highest => the tree of root 1 (pairs
        // within root 1: {4,5},{5,10},{4,8},... all pairs with root key
        // [1,1]) is duplicated first.
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(1, 1000), (3, 500), (2, 100)]);
        let tree11: Vec<&Itemset> = cands
            .iter()
            .filter(|c| &*root_key(c.items(), &tax) == [1, 1].as_slice())
            .collect();
        let budget = tree11.len() as u64 * candidate_entry_bytes(2);
        let sel = select_duplicates(
            DuplicateGrain::Tree,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        assert_eq!(sel.duplicated.len(), tree11.len());
        for d in &sel.duplicated {
            assert_eq!(&*root_key(d.items(), &tax), [1, 1].as_slice());
        }
        // Paper Example 3 names {4,5} and {5,10} among them.
        assert!(sel.duplicated.contains(&iset![4, 5]));
        assert!(sel.duplicated.contains(&iset![5, 10]));
    }

    #[test]
    fn tree_grain_stops_when_tree_does_not_fit() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(1, 1000)]);
        // Budget for 2 entries: the [1,1] tree is bigger, so nothing fits.
        let sel = select_duplicates(
            DuplicateGrain::Tree,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            2 * candidate_entry_bytes(2),
        );
        assert!(sel.duplicated.is_empty());
    }

    #[test]
    fn path_grain_matches_paper_example_4() {
        // Paper Example 4: hot leaf pair {8,10} is duplicated with its
        // ancestor candidates {1,3},{1,8},{3,4},{3,10},{4,8} (and {4,10},
        // {1,10},{1,4},{3,8}? — the paper lists the five shown; the exact
        // ancestor set is every candidate reachable by generalizing 8
        // and/or 10).
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(8, 900), (10, 800)]);
        let budget = 16 * candidate_entry_bytes(2);
        let sel = select_duplicates(
            DuplicateGrain::Path,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        assert!(sel.duplicated.contains(&iset![8, 10]));
        for anc in [iset![3, 4], iset![3, 10], iset![4, 8]] {
            assert!(sel.duplicated.contains(&anc), "missing ancestor {anc:?}");
        }
        // {1,3} and {1,8}: ancestors of {8,10}? 1 is an ancestor of 10 via
        // 4, 3 of 8 — but {1,3},{1,8} mix tree-1 items, they are related
        // pairs and never candidates. The paper's figure lists them due to
        // its different tree (8 under 3 under 1, 10 under 4 under 1 — both
        // in tree 1). In this forest both ARE in tree 1, so {1,anything
        // under 1} is related => the true ancestor candidates here are the
        // unrelated generalizations only.
        for d in &sel.duplicated {
            assert!(!tax.related(d.items()[0], d.items()[1]));
        }
    }

    #[test]
    fn path_grain_ignores_hot_interior_items() {
        // Interior item 3 is hot, but its leaf descendants are cold: Path
        // must not seed from {3, x} (interior), Fine must.
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(3, 1000), (6, 950)]);
        let budget = 3 * candidate_entry_bytes(2);
        let path = select_duplicates(
            DuplicateGrain::Path,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        let fine = select_duplicates(
            DuplicateGrain::Fine,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        assert!(!path.duplicated.contains(&iset![3, 6]));
        assert!(fine.duplicated.contains(&iset![3, 6]));
    }

    #[test]
    fn fine_grain_fills_budget_better_than_tree() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(1, 1000), (8, 900), (10, 800)]);
        let budget = 5 * candidate_entry_bytes(2);
        let tree = select_duplicates(
            DuplicateGrain::Tree,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        let fine = select_duplicates(
            DuplicateGrain::Fine,
            &cands,
            &tax,
            &counts,
            100,
            &l1_all(&tax),
            budget,
        );
        assert!(fine.duplicated.len() > tree.duplicated.len());
        assert!(fine.duplicated.len() as u64 * candidate_entry_bytes(2) <= budget);
    }

    #[test]
    fn duplicated_and_remaining_partition_the_candidates() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(8, 900)]);
        for grain in [
            DuplicateGrain::Tree,
            DuplicateGrain::Path,
            DuplicateGrain::Fine,
        ] {
            let sel = select_duplicates(
                grain,
                &cands,
                &tax,
                &counts,
                100,
                &l1_all(&tax),
                8 * candidate_entry_bytes(2),
            );
            assert_eq!(sel.duplicated.len() + sel.remaining.len(), cands.len());
            let dup: FxHashSet<&Itemset> = sel.duplicated.iter().collect();
            assert_eq!(dup.len(), sel.duplicated.len(), "duplicates repeated");
            for r in &sel.remaining {
                assert!(!dup.contains(r));
            }
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let counts = counts_with(&tax, &[(8, 900), (10, 900)]);
        let run = || {
            select_duplicates(
                DuplicateGrain::Fine,
                &cands,
                &tax,
                &counts,
                100,
                &l1_all(&tax),
                10 * candidate_entry_bytes(2),
            )
            .duplicated
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ancestor_candidates_enumeration() {
        let tax = paper_forest();
        let cands = figure6_candidates(&tax);
        let index: FxHashMap<Itemset, usize> = cands
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        // {8,15}: 8 generalizes to 3, 1; 15 to 6, 2.
        let ancs = ancestor_candidates(&iset![8, 15], &tax, &index);
        for expected in [
            iset![3, 15],
            iset![1, 15],
            iset![6, 8],
            iset![2, 8],
            iset![3, 6],
            iset![1, 6],
            iset![2, 3],
            iset![1, 2],
        ] {
            assert!(ancs.contains(&expected), "missing {expected:?}");
        }
        assert!(!ancs.contains(&iset![8, 15]), "must exclude the seed");
    }
}
