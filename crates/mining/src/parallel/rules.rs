//! Parallel rule derivation — distributing the paper's second subproblem.
//!
//! The paper notes that once the large itemsets are known, deriving rules
//! "is not a big issue"; it is, however, embarrassingly parallel, and at
//! production rule volumes (hundreds of thousands of itemsets × 2^k
//! splits) worth distributing. Each itemset's rules depend only on the
//! global support map, which every node already holds at the end of
//! mining, so the partitioning is a stateless round-robin: node `n`
//! derives the rules of every `n`-th large itemset and ships the results
//! to the coordinator.

use crate::report::MiningOutput;
use crate::rules::{derive_rules_for_itemset, Rule};
use gar_cluster::{Cluster, ClusterConfig};
use gar_taxonomy::Taxonomy;
use gar_types::{FxHashMap, Itemset, Result};

/// Derives all rules meeting `min_confidence`, splitting the work over a
/// simulated cluster. Produces exactly the same rule set (same order) as
/// [`crate::rules::derive_rules`].
pub fn derive_rules_parallel(
    output: &MiningOutput,
    min_confidence: f64,
    tax: Option<&Taxonomy>,
    cluster: &ClusterConfig,
) -> Result<Vec<Rule>> {
    cluster.validate()?;
    let support: FxHashMap<Itemset, u64> = output.support_map();
    let itemsets: Vec<&Itemset> = output
        .all_large()
        .filter(|(s, _)| s.len() >= 2)
        .map(|(s, _)| s)
        .collect();

    let run = Cluster::run(cluster, |ctx| {
        let mut local: Vec<Rule> = Vec::new();
        for (i, set) in itemsets.iter().enumerate() {
            if i % ctx.num_nodes() != ctx.node_id() {
                continue;
            }
            let sup_x = support[*set];
            derive_rules_for_itemset(
                set,
                sup_x,
                &support,
                output.num_transactions,
                min_confidence,
                tax,
                &mut local,
            );
            ctx.stats().add_cpu(1 << set.len().min(20));
        }
        Ok(local)
    })?;

    let mut all: Vec<Rule> = run.results.into_iter().flatten().collect();
    crate::rules::sort_rules(&mut all);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MiningParams;
    use crate::rules::derive_rules;
    use crate::sequential::cumulate;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::ItemId;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn mined() -> (Taxonomy, MiningOutput) {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        let tax = b.build().unwrap();
        let txns = vec![
            ids(&[2]),
            ids(&[3, 7]),
            ids(&[4, 7]),
            ids(&[6]),
            ids(&[6]),
            ids(&[3]),
        ];
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.3)).unwrap();
        (tax, out)
    }

    #[test]
    fn parallel_rules_match_sequential() {
        let (tax, out) = mined();
        for conf in [0.0, 0.5, 0.9] {
            let seq = derive_rules(&out, conf, Some(&tax));
            for nodes in [1usize, 2, 3] {
                let cluster = ClusterConfig::new(nodes, 1 << 20);
                let par = derive_rules_parallel(&out, conf, Some(&tax), &cluster).unwrap();
                assert_eq!(seq, par, "conf {conf} nodes {nodes}");
            }
        }
    }

    #[test]
    fn empty_output_gives_no_rules() {
        let (tax, mut out) = mined();
        out.passes.clear();
        let cluster = ClusterConfig::new(2, 1 << 20);
        let rules = derive_rules_parallel(&out, 0.5, Some(&tax), &cluster).unwrap();
        assert!(rules.is_empty());
    }
}
