//! Generalized association rule mining with classification hierarchy —
//! sequential baselines and the six parallel algorithms of
//! Shintani & Kitsuregawa (SIGMOD '98).
//!
//! # Layout
//!
//! * [`params`] — mining parameters (minimum support/confidence, counter
//!   choice, pass limits).
//! * [`candidate`] — Apriori candidate generation `L_{k-1} ⋈ L_{k-1}` with
//!   the subset prune and Cumulate's taxonomy-aware pass-2 pruning.
//! * [`counter`] — candidate support counters: a flat Fx hash map and a
//!   classic Apriori hash tree, both probe-counted.
//! * [`sequential`] — Apriori ([RR94], hierarchy-blind baseline) and
//!   Cumulate ([SA95], the algorithm every parallel variant distributes).
//! * [`parallel`] — NPGM, HPGM, H-HPGM and the skew-handling duplication
//!   variants H-HPGM-TGD / -PGD / -FGD, all running on the
//!   [`gar_cluster`] shared-nothing simulator.
//! * [`rules`] — rule derivation from large itemsets (min-confidence,
//!   redundant ancestor-rule removal, and the [SA95] R-interesting filter).
//! * [`report`] — per-pass, per-node measurement reports the bench harness
//!   turns into the paper's tables and figures.
//!
//! # Quick start
//!
//! ```
//! use gar_mining::{params::MiningParams, sequential::cumulate};
//! use gar_storage::PartitionedDatabase;
//! use gar_taxonomy::TaxonomyBuilder;
//! use gar_types::ItemId;
//!
//! // Tiny taxonomy: 0 is the parent of 1 and 2.
//! let mut b = TaxonomyBuilder::new(3);
//! b.edge(1, 0).unwrap();
//! b.edge(2, 0).unwrap();
//! let tax = b.build().unwrap();
//!
//! // Four transactions over the leaves.
//! let txns = vec![
//!     vec![ItemId(1)],
//!     vec![ItemId(2)],
//!     vec![ItemId(1), ItemId(2)],
//!     vec![ItemId(1)],
//! ];
//! let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
//!
//! let params = MiningParams::with_min_support(0.9);
//! let out = cumulate(db.partition(0), &tax, &params).unwrap();
//! // Every transaction contains a descendant of 0, so {0} is large even
//! // though 0 never appears in a raw transaction.
//! assert_eq!(out.support_of(&[ItemId(0)]), Some(4));
//! ```

// Under `--cfg gar_loom` (see `cargo xtask loom`) the cluster crate
// strips its std-backed node machinery, so the parallel algorithms and
// the cluster-counter reports are stripped here too; the sequential
// miners, rule derivation, and everything the serving layer needs stay
// available for model checking downstream crates.
pub mod candidate;
pub mod checkpoint;
pub mod counter;
pub mod oracle;
#[cfg(not(gar_loom))]
pub mod parallel;
pub mod params;
pub mod persist;
pub mod report;
pub mod rules;
pub mod sequential;
pub mod wire;

pub use params::{Algorithm, CounterKind, MiningParams};
pub use report::MiningOutput;
#[cfg(not(gar_loom))]
pub use report::{ParallelReport, PassReport};
