//! Mining parameters and algorithm identifiers.

use gar_types::{Error, Result};

/// Which candidate counter backs support counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterKind {
    /// Flat Fx hash map keyed by the itemset: one probe per generated
    /// k-subset. This is the structure the HPA family (and this paper)
    /// describe — "search the hash table; if hit, increment its sup_cou".
    /// Beware at high `k`: enumerating all `C(|t'|, k)` subsets of a long
    /// extended transaction is combinatorial (the paper's measurements
    /// stop at pass 2, where it is the natural choice).
    HashMap,
    /// Apriori hash tree ([RR94]): walks transaction and candidate tree
    /// together, so only subsets matching some candidate prefix are ever
    /// enumerated — essential for deep passes. The default; yields
    /// bit-identical counts and probe (hit) meters to [`CounterKind::HashMap`].
    #[default]
    HashTree,
}

/// The algorithms of the paper (plus the sequential baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Sequential non-hierarchical Apriori [RR94].
    Apriori,
    /// Sequential Cumulate [SA95].
    Cumulate,
    /// Non Partitioned Generalized association rule Mining (§3.1).
    Npgm,
    /// Hash Partitioned GM, hierarchy-blind (§3.2).
    Hpgm,
    /// Hierarchical HPGM — partition by root itemset (§3.3).
    HHpgm,
    /// H-HPGM with Tree Grain Duplicate (§3.4.1).
    HHpgmTgd,
    /// H-HPGM with Path Grain Duplicate (§3.4.2).
    HHpgmPgd,
    /// H-HPGM with Fine Grain Duplicate (§3.4.3).
    HHpgmFgd,
    /// Taxonomy-extended parallel FP-Growth (pattern growth instead of
    /// candidate generation). Implemented by the `gar-fpg` crate; the
    /// Apriori-family entry points reject it with a pointer there.
    FpGrowth,
}

impl Algorithm {
    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Apriori => "Apriori",
            Algorithm::Cumulate => "Cumulate",
            Algorithm::Npgm => "NPGM",
            Algorithm::Hpgm => "HPGM",
            Algorithm::HHpgm => "H-HPGM",
            Algorithm::HHpgmTgd => "H-HPGM-TGD",
            Algorithm::HHpgmPgd => "H-HPGM-PGD",
            Algorithm::HHpgmFgd => "H-HPGM-FGD",
            Algorithm::FpGrowth => "FP-Growth",
        }
    }

    /// All parallel Apriori-family algorithms, in the paper's
    /// presentation order. FP-Growth is deliberately absent: it lives in
    /// the `gar-fpg` crate and the suites that iterate this list drive
    /// the candidate-generation pass loop.
    pub fn parallel_all() -> [Algorithm; 6] {
        [
            Algorithm::Npgm,
            Algorithm::Hpgm,
            Algorithm::HHpgm,
            Algorithm::HHpgmTgd,
            Algorithm::HHpgmPgd,
            Algorithm::HHpgmFgd,
        ]
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one mining run.
#[derive(Debug, Clone)]
pub struct MiningParams {
    /// Minimum support as a fraction of the transaction count (the paper
    /// sweeps 0.3 %-2 %, i.e. `0.003..=0.02`).
    pub min_support: f64,
    /// Stop after this pass even if large itemsets remain (`None` = run to
    /// fixpoint). The paper's measurements focus on pass 2.
    pub max_pass: Option<usize>,
    /// Candidate counter implementation.
    pub counter: CounterKind,
}

impl MiningParams {
    /// Parameters with the given minimum support and defaults elsewhere.
    pub fn with_min_support(min_support: f64) -> MiningParams {
        MiningParams {
            min_support,
            max_pass: None,
            counter: CounterKind::default(),
        }
    }

    /// Limits the run to the first `k` passes.
    pub fn max_pass(mut self, k: usize) -> MiningParams {
        self.max_pass = Some(k);
        self
    }

    /// Selects the counter implementation.
    pub fn counter(mut self, kind: CounterKind) -> MiningParams {
        self.counter = kind;
        self
    }

    /// Checks the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.min_support > 0.0 && self.min_support <= 1.0) {
            return Err(Error::InvalidConfig(format!(
                "min_support {} must be in (0, 1]",
                self.min_support
            )));
        }
        if self.max_pass == Some(0) {
            return Err(Error::InvalidConfig("max_pass must be >= 1".into()));
        }
        Ok(())
    }

    /// The absolute support threshold for `num_transactions` transactions:
    /// the smallest count that satisfies `count / n >= min_support`.
    pub fn min_support_count(&self, num_transactions: u64) -> u64 {
        ((self.min_support * num_transactions as f64).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MiningParams::with_min_support(0.01).validate().is_ok());
        assert!(MiningParams::with_min_support(0.0).validate().is_err());
        assert!(MiningParams::with_min_support(1.5).validate().is_err());
        assert!(MiningParams::with_min_support(-0.1).validate().is_err());
        assert!(MiningParams::with_min_support(0.1)
            .max_pass(0)
            .validate()
            .is_err());
    }

    #[test]
    fn min_support_count_rounds_up() {
        let p = MiningParams::with_min_support(0.003);
        assert_eq!(p.min_support_count(1000), 3);
        assert_eq!(p.min_support_count(1001), 4); // 3.003 -> 4
        assert_eq!(p.min_support_count(1), 1);
        // Never zero, even for microscopic supports.
        let p = MiningParams::with_min_support(1e-9);
        assert_eq!(p.min_support_count(10), 1);
    }

    #[test]
    fn algorithm_names_match_paper() {
        assert_eq!(Algorithm::HHpgmFgd.name(), "H-HPGM-FGD");
        assert_eq!(Algorithm::Npgm.to_string(), "NPGM");
        assert_eq!(Algorithm::parallel_all().len(), 6);
    }

    #[test]
    fn builder_style_setters() {
        let p = MiningParams::with_min_support(0.01)
            .max_pass(2)
            .counter(CounterKind::HashTree);
        assert_eq!(p.max_pass, Some(2));
        assert_eq!(p.counter, CounterKind::HashTree);
    }
}
