//! Mining results and measurement reports.

use crate::params::Algorithm;
#[cfg(not(gar_loom))]
use gar_cluster::{CostModel, NodeStatsSnapshot};
use gar_types::{FxHashMap, ItemId, Itemset};
#[cfg(not(gar_loom))]
use std::time::Duration;

/// The large itemsets of one pass (`L_k`), with their global support
/// counts.
#[derive(Debug, Clone)]
pub struct LargePass {
    /// The pass number (`k` = itemset size).
    pub k: usize,
    /// The large k-itemsets with their `sup_cou`, sorted by itemset.
    pub itemsets: Vec<(Itemset, u64)>,
}

/// The complete answer to the paper's first subproblem: all large itemsets
/// of every size, plus the thresholds they were mined under.
#[derive(Debug, Clone)]
pub struct MiningOutput {
    /// Which algorithm produced this (all must agree — that is tested).
    pub algorithm: Algorithm,
    /// Total transactions counted.
    pub num_transactions: u64,
    /// Absolute minimum support count applied.
    pub min_support_count: u64,
    /// `passes[i]` holds `L_{i+1}`.
    pub passes: Vec<LargePass>,
}

impl MiningOutput {
    /// The large k-itemsets, if pass `k` ran and found any.
    pub fn large(&self, k: usize) -> Option<&LargePass> {
        self.passes.iter().find(|p| p.k == k)
    }

    /// Iterates all large itemsets of every size.
    pub fn all_large(&self) -> impl Iterator<Item = &(Itemset, u64)> {
        self.passes.iter().flat_map(|p| p.itemsets.iter())
    }

    /// Total number of large itemsets across passes.
    pub fn num_large(&self) -> usize {
        self.passes.iter().map(|p| p.itemsets.len()).sum()
    }

    /// The support count of the itemset with exactly `items`, if large.
    pub fn support_of(&self, items: &[ItemId]) -> Option<u64> {
        let target = Itemset::from_unsorted(items.to_vec());
        self.large(target.len())?
            .itemsets
            .binary_search_by(|(s, _)| s.cmp(&target))
            .ok()
            .map(|i| self.large(target.len()).unwrap().itemsets[i].1)
    }

    /// A support lookup map over all large itemsets (for rule derivation).
    pub fn support_map(&self) -> FxHashMap<Itemset, u64> {
        self.all_large().cloned().collect()
    }
}

/// Per-pass measurements of a parallel run.
#[cfg(not(gar_loom))]
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Pass number.
    pub k: usize,
    /// `|C_k|` — candidates generated (before duplication split).
    pub num_candidates: usize,
    /// `|C_k^D|` — candidates duplicated to every node (TGD/PGD/FGD).
    pub num_duplicated: usize,
    /// NPGM fragment count (1 when the candidates fit in one node's
    /// memory).
    pub num_fragments: usize,
    /// `|L_k|`.
    pub num_large: usize,
    /// `true` when this pass was replayed from a checkpoint (`mine
    /// --resume` or degraded-mode recovery) instead of computed; its
    /// `node_deltas` are zero.
    pub restored: bool,
    /// Per-node counter deltas for this pass alone.
    pub node_deltas: Vec<NodeStatsSnapshot>,
    /// Cost-model execution time of this pass (critical path).
    pub modeled_seconds: f64,
}

#[cfg(not(gar_loom))]
impl PassReport {
    /// Average megabytes received per node in this pass — the Table 6
    /// metric.
    pub fn avg_mb_received(&self) -> f64 {
        if self.node_deltas.is_empty() {
            return 0.0;
        }
        let total: u64 = self.node_deltas.iter().map(|d| d.bytes_received).sum();
        total as f64 / self.node_deltas.len() as f64 / (1024.0 * 1024.0)
    }

    /// Per-node successful-probe counts — the Figure 15 series.
    pub fn probes_per_node(&self) -> Vec<u64> {
        self.node_deltas.iter().map(|d| d.hash_probes).collect()
    }
}

/// The full record of one parallel mining run.
#[cfg(not(gar_loom))]
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// The mined large itemsets.
    pub output: MiningOutput,
    /// Cluster size used.
    pub num_nodes: usize,
    /// One report per executed pass (index 0 = pass 1).
    pub pass_reports: Vec<PassReport>,
    /// Wall-clock of the threaded simulation on this machine.
    pub wall: Duration,
    /// Cost-model execution time summed over passes.
    pub modeled_seconds: f64,
    /// Whole-run per-node counters.
    pub node_totals: Vec<NodeStatsSnapshot>,
    /// Degraded-mode notes: one human-readable entry per node failure the
    /// run recovered from (empty for a clean run). The mined `output` is
    /// identical either way — only the execution story differs.
    pub degraded: Vec<String>,
}

#[cfg(not(gar_loom))]
impl ParallelReport {
    /// The report of pass `k`, if it ran.
    pub fn pass(&self, k: usize) -> Option<&PassReport> {
        self.pass_reports.iter().find(|p| p.k == k)
    }

    /// Recomputes per-pass and total modeled times under a different cost
    /// model (ablation support — counters are model-independent).
    pub fn reprice(&mut self, cost: &CostModel) {
        let mut total = 0.0;
        for p in &mut self.pass_reports {
            p.modeled_seconds = cost.execution_seconds(&p.node_deltas);
            total += p.modeled_seconds;
        }
        self.modeled_seconds = total;
    }
}

#[cfg(all(test, not(gar_loom)))]
mod tests {
    use super::*;
    use gar_types::iset;

    fn sample_output() -> MiningOutput {
        MiningOutput {
            algorithm: Algorithm::Cumulate,
            num_transactions: 100,
            min_support_count: 5,
            passes: vec![
                LargePass {
                    k: 1,
                    itemsets: vec![(iset![1], 50), (iset![2], 30)],
                },
                LargePass {
                    k: 2,
                    itemsets: vec![(iset![1, 2], 20)],
                },
            ],
        }
    }

    #[test]
    fn support_lookup() {
        let out = sample_output();
        assert_eq!(out.support_of(&[ItemId(1)]), Some(50));
        assert_eq!(out.support_of(&[ItemId(2), ItemId(1)]), Some(20));
        assert_eq!(out.support_of(&[ItemId(3)]), None);
        assert_eq!(out.num_large(), 3);
    }

    #[test]
    fn support_map_covers_everything() {
        let m = sample_output().support_map();
        assert_eq!(m.len(), 3);
        assert_eq!(m[&iset![1, 2]], 20);
    }

    #[test]
    fn pass_report_metrics() {
        let mk = |recv: u64, probes: u64| NodeStatsSnapshot {
            bytes_received: recv,
            hash_probes: probes,
            ..Default::default()
        };
        let p = PassReport {
            k: 2,
            num_candidates: 10,
            num_duplicated: 0,
            num_fragments: 1,
            num_large: 4,
            restored: false,
            node_deltas: vec![mk(2 * 1024 * 1024, 5), mk(4 * 1024 * 1024, 15)],
            modeled_seconds: 0.0,
        };
        assert!((p.avg_mb_received() - 3.0).abs() < 1e-9);
        assert_eq!(p.probes_per_node(), vec![5, 15]);
    }

    #[test]
    fn reprice_updates_totals() {
        let delta = NodeStatsSnapshot {
            cpu_ticks: 1_000_000,
            ..Default::default()
        };
        let mut rep = ParallelReport {
            output: sample_output(),
            num_nodes: 1,
            pass_reports: vec![PassReport {
                k: 1,
                num_candidates: 0,
                num_duplicated: 0,
                num_fragments: 1,
                num_large: 2,
                restored: false,
                node_deltas: vec![delta],
                modeled_seconds: 0.0,
            }],
            wall: Duration::ZERO,
            modeled_seconds: 0.0,
            node_totals: vec![delta],
            degraded: Vec::new(),
        };
        rep.reprice(&CostModel::default());
        assert!(rep.modeled_seconds > 0.0);
        assert_eq!(rep.pass_reports[0].modeled_seconds, rep.modeled_seconds);
    }
}
