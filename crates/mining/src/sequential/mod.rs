//! Sequential miners: the baselines every parallel algorithm must match.
//!
//! * [`cumulate`] — the hierarchy-aware algorithm of [SA95] the paper
//!   parallelizes (section 2 describes it pass by pass);
//! * [`apriori`] — the hierarchy-blind original [RR94], kept to quantify
//!   what the taxonomy costs and finds;
//! * [`stratify`] — [SA95]'s other strategy (count shallow strata first,
//!   prune descendants of small itemsets), reproduced as an extension.
//!
//! The parallel correctness tests assert every parallel variant produces
//! exactly `cumulate`'s large itemsets and counts.

mod apriori;
mod cumulate;
mod stratify;

pub use apriori::apriori;
pub use cumulate::{cumulate, cumulate_metered, SequentialMeters};
pub use stratify::stratify;

use crate::counter::CandidateCounter;
use crate::report::LargePass;
use gar_types::{ItemId, Itemset};

/// Filters a counter's results to the large itemsets (count ≥ threshold),
/// keeping itemset order (already sorted — candidates are generated
/// sorted).
pub(crate) fn extract_large(
    counter: Box<dyn CandidateCounter>,
    min_support_count: u64,
) -> Vec<(Itemset, u64)> {
    counter
        .into_counts()
        .into_iter()
        .filter(|(_, c)| *c >= min_support_count)
        .collect()
}

/// Builds the pass-1 result from dense per-item counts.
pub(crate) fn large_items_from_counts(counts: &[u64], min_support_count: u64) -> LargePass {
    let itemsets = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= min_support_count)
        .map(|(i, &c)| (Itemset::singleton(ItemId(i as u32)), c))
        .collect();
    LargePass { k: 1, itemsets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_items_filters_by_threshold() {
        let pass = large_items_from_counts(&[5, 0, 3, 10], 4);
        let items: Vec<u32> = pass
            .itemsets
            .iter()
            .map(|(s, _)| s.items()[0].raw())
            .collect();
        assert_eq!(items, vec![0, 3]);
        assert_eq!(pass.itemsets[1].1, 10);
    }
}
