//! The Cumulate algorithm ([SA95]), as described in the paper's section 2.

use crate::candidate::{generate_candidates, generate_pairs, items_in_candidates};
use crate::counter::build_counter;
use crate::params::{Algorithm, MiningParams};
use crate::report::{LargePass, MiningOutput};
use crate::sequential::{extract_large, large_items_from_counts};
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::{ItemId, Itemset, Result};

/// Abstract-work meters of one sequential run, charged with the same
/// units the parallel ledgers use (`NodeStats`): `cpu_ticks` per
/// extension item and counter-walk step, `hash_probes` per sup_cou
/// increment, `io_bytes` per byte scanned. Priced through the cluster
/// crate's `CostModel` they yield a modeled execution time directly
/// comparable to `ParallelReport::modeled_seconds` — which is what lets
/// the bench gate compute a wall/modeled ratio for the sequential
/// reference too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialMeters {
    /// Extension items pushed + counter-walk steps + per-pass candidate
    /// generation (one tick per candidate, as the parallel loop charges).
    pub cpu_ticks: u64,
    /// Successful candidate count increments.
    pub hash_probes: u64,
    /// Bytes read from the transaction source, all passes.
    pub io_bytes: u64,
    /// Full scans of the partition (one per pass).
    pub scan_passes: u64,
}

/// Mines all large itemsets of `part` under the classification hierarchy
/// `tax`, sequentially, with Cumulate's three optimizations:
///
/// 1. ancestors are precomputed (the taxonomy's closed form);
/// 2. ancestors present in no candidate of the pass are not added to
///    extended transactions ([`PrunedView`]);
/// 3. pass-2 candidates consisting of an item and its ancestor are
///    deleted (their support equals the item's — only redundant rules
///    would follow).
pub fn cumulate(
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
) -> Result<MiningOutput> {
    cumulate_metered(part, tax, params).map(|(out, _)| out)
}

/// [`cumulate`], additionally returning the run's [`SequentialMeters`].
pub fn cumulate_metered(
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
) -> Result<(MiningOutput, SequentialMeters)> {
    params.validate()?;
    let num_transactions = part.num_transactions() as u64;
    let min_support_count = params.min_support_count(num_transactions);
    let mut meters = SequentialMeters::default();

    // Pass 1: count every item of every level via full ancestor extension.
    let mut item_counts = vec![0u64; tax.num_items() as usize];
    let mut extended = Vec::new();
    let io_before = part.bytes_read();
    let mut scan = part.scan()?;
    while let Some(t) = scan.next_slice()? {
        tax.extend_transaction_into(t, &mut extended);
        meters.cpu_ticks += extended.len() as u64;
        for &it in &extended {
            item_counts[it.index()] += 1;
        }
    }
    drop(scan);
    meters.io_bytes += part.bytes_read() - io_before;
    meters.scan_passes += 1;
    let l1 = large_items_from_counts(&item_counts, min_support_count);
    let mut passes = vec![l1];

    // Passes k >= 2.
    let mut k = 2;
    loop {
        if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
            passes.retain(|p| !p.itemsets.is_empty());
            break;
        }
        if let Some(max) = params.max_pass {
            if k > max {
                break;
            }
        }
        let prev = &passes.last().expect("nonempty").itemsets;
        let candidates: Vec<Itemset> = if k == 2 {
            let l1_items: Vec<ItemId> = prev.iter().map(|(s, _)| s.items()[0]).collect();
            generate_pairs(&l1_items, Some(tax))
        } else {
            let prev_sets: Vec<Itemset> = prev.iter().map(|(s, _)| s.clone()).collect();
            generate_candidates(&prev_sets)
        };
        if candidates.is_empty() {
            break;
        }
        meters.cpu_ticks += candidates.len() as u64;

        // Optimization 2: prune taxonomy items absent from all candidates.
        let view = PrunedView::new(tax, items_in_candidates(&candidates));
        let mut counter = build_counter(params.counter, k, &candidates);

        let io_before = part.bytes_read();
        let mut scan = part.scan()?;
        while let Some(t) = scan.next_slice()? {
            view.extend_transaction_into(tax, t, &mut extended);
            meters.cpu_ticks += extended.len() as u64;
            let out = counter.count_transaction(&extended);
            meters.cpu_ticks += out.work;
            meters.hash_probes += out.hits;
        }
        drop(scan);
        meters.io_bytes += part.bytes_read() - io_before;
        meters.scan_passes += 1;

        let large = extract_large(counter, min_support_count);
        let empty = large.is_empty();
        if !empty {
            passes.push(LargePass { k, itemsets: large });
        }
        if empty {
            break;
        }
        k += 1;
    }

    Ok((
        MiningOutput {
            algorithm: Algorithm::Cumulate,
            num_transactions,
            min_support_count,
            passes,
        },
        meters,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    /// Taxonomy from [SA95]'s running example:
    ///   clothes(0) -> outerwear(1) -> jackets(3), ski pants(4)
    ///   clothes(0) -> shirts(2)
    ///   footwear(5) -> shoes(6), hiking boots(7)
    fn sa95_taxonomy() -> Taxonomy {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        b.build().unwrap()
    }

    /// The six transactions of [SA95] Table 1 (by item code above):
    fn sa95_db() -> PartitionedDatabase {
        let txns = vec![
            ids(&[2]),    // shirt
            ids(&[3, 7]), // jacket, hiking boots
            ids(&[4, 7]), // ski pants, hiking boots
            ids(&[6]),    // shoes
            ids(&[6]),    // shoes
            ids(&[3]),    // jacket
        ];
        PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap()
    }

    #[test]
    fn reproduces_sa95_running_example() {
        // [SA95] with minimum support 30% (2 transactions) finds the large
        // itemsets: {jacket} {outerwear} {clothes} {shoes} {hiking boots}
        // {footwear} {outerwear, hiking boots} {clothes, hiking boots}
        // {outerwear, footwear} {clothes, footwear}.
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.3)).unwrap();

        let l1: Vec<u32> = out
            .large(1)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.items()[0].raw())
            .collect();
        assert_eq!(l1, vec![0, 1, 3, 5, 6, 7]);

        let l2: Vec<Itemset> = out
            .large(2)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(l2, vec![iset![0, 5], iset![0, 7], iset![1, 5], iset![1, 7]]);
        // Counts: outerwear ∧ hiking boots in transactions 2 and 3.
        assert_eq!(out.support_of(&ids(&[1, 7])), Some(2));
        assert_eq!(out.support_of(&ids(&[0, 5])), Some(2));
        assert!(out.large(3).is_none());
    }

    #[test]
    fn interior_support_includes_descendants() {
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.1)).unwrap();
        // clothes(0) is contained in transactions 1,2,3,6 (any clothing).
        assert_eq!(out.support_of(&[ItemId(0)]), Some(4));
        // footwear(5) in 2,3,4,5.
        assert_eq!(out.support_of(&[ItemId(5)]), Some(4));
    }

    #[test]
    fn no_item_ancestor_pairs_ever_large() {
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.01)).unwrap();
        for (set, _) in out.all_large() {
            for (i, &a) in set.items().iter().enumerate() {
                for &b in &set.items()[i + 1..] {
                    assert!(!tax.related(a, b), "{set:?} mixes related items");
                }
            }
        }
    }

    #[test]
    fn max_pass_stops_early() {
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let params = MiningParams::with_min_support(0.1).max_pass(1);
        let out = cumulate(db.partition(0), &tax, &params).unwrap();
        assert_eq!(out.passes.len(), 1);
        assert_eq!(out.passes[0].k, 1);
    }

    #[test]
    fn empty_database_yields_no_large_itemsets() {
        let tax = sa95_taxonomy();
        let db = PartitionedDatabase::build_in_memory(1, std::iter::empty()).unwrap();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.5)).unwrap();
        assert_eq!(out.num_large(), 0);
        assert_eq!(out.num_transactions, 0);
    }

    #[test]
    fn min_support_one_hundred_percent() {
        let tax = sa95_taxonomy();
        let txns = vec![ids(&[3, 7]), ids(&[3, 7]), ids(&[3, 6])];
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(1.0)).unwrap();
        // Items in every transaction: 3 (jacket), its ancestors 1 and 0,
        // and footwear 5 (7 or 6 in each txn).
        let l1: Vec<u32> = out
            .large(1)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.items()[0].raw())
            .collect();
        assert_eq!(l1, vec![0, 1, 3, 5]);
        // {3,5} holds in all three; {0,3} etc. pruned as related.
        let l2: Vec<Itemset> = out
            .large(2)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(l2, vec![iset![0, 5], iset![1, 5], iset![3, 5]]);
    }

    #[test]
    fn deep_passes_terminate() {
        // Flat taxonomy (no hierarchy): Cumulate = Apriori. A dense block
        // of identical transactions drives k to 4.
        let tax = TaxonomyBuilder::new(6).build().unwrap();
        let txns: Vec<Vec<ItemId>> = (0..10).map(|_| ids(&[1, 2, 3, 4])).collect();
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let out = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.9)).unwrap();
        assert_eq!(
            out.large(4).unwrap().itemsets,
            vec![(iset![1, 2, 3, 4], 10)]
        );
        assert!(out.large(5).is_none());
    }

    #[test]
    fn metered_run_matches_and_charges_every_meter() {
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let params = MiningParams::with_min_support(0.3);
        let plain = cumulate(db.partition(0), &tax, &params).unwrap();
        let (metered, m) = cumulate_metered(db.partition(0), &tax, &params).unwrap();
        assert_eq!(plain.num_large(), metered.num_large());
        for (a, b) in plain.all_large().zip(metered.all_large()) {
            assert_eq!(a, b);
        }
        assert!(m.cpu_ticks > 0, "extension/walk work must be charged");
        assert!(m.hash_probes > 0, "sup_cou increments must be charged");
        assert!(m.io_bytes > 0, "scanned bytes must be charged");
        // At least the item pass and the pair pass touch the data.
        assert!(m.scan_passes >= 2);
    }

    #[test]
    fn both_counter_kinds_give_identical_results() {
        let tax = sa95_taxonomy();
        let db = sa95_db();
        let a = cumulate(db.partition(0), &tax, &MiningParams::with_min_support(0.3)).unwrap();
        let b = cumulate(
            db.partition(0),
            &tax,
            &MiningParams::with_min_support(0.3).counter(crate::params::CounterKind::HashMap),
        )
        .unwrap();
        assert_eq!(a.num_large(), b.num_large());
        for (x, y) in a.all_large().zip(b.all_large()) {
            assert_eq!(x, y);
        }
    }
}
