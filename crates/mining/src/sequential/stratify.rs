//! Stratify — [SA95]'s alternative to Cumulate, reproduced as an
//! extension (the SIGMOD '98 paper parallelizes Cumulate, but cites both).
//!
//! Observation: `sup(X') ≥ sup(X)` whenever `X'` is an *ancestor itemset*
//! of `X` (each member generalized). Stratify therefore counts candidates
//! **top-down by depth**: the shallowest stratum first; after each
//! stratum, every descendant of a small itemset is deleted unseen. The
//! price is one transaction-database scan per stratum — profitable when
//! ancestor itemsets prune aggressively, wasteful otherwise (which is why
//! [SA95] ultimately recommends Cumulate, and the paper parallelizes
//! that). The implementation counts strata in batches of
//! `stratum_batch` depths per scan, as [SA95] suggests ("count C_k
//! together with enough following strata to fill memory").

use crate::candidate::{generate_candidates, generate_pairs, items_in_candidates};
use crate::counter::build_counter;
use crate::params::{Algorithm, MiningParams};
use crate::report::{LargePass, MiningOutput};
use crate::sequential::large_items_from_counts;
use gar_storage::TransactionSource;
use gar_taxonomy::{PrunedView, Taxonomy};
use gar_types::{FxHashMap, FxHashSet, ItemId, Itemset, Result};

/// Depth of an itemset: the sum of its members' taxonomy depths. Stratum
/// 0 holds the all-roots candidates.
fn itemset_depth(set: &Itemset, tax: &Taxonomy) -> u32 {
    set.items().iter().map(|&i| tax.depth(i)).sum()
}

/// True when `anc` is an ancestor itemset of `desc`: same size, each
/// member of `desc` equal to or a descendant of the matching member.
/// Members are matched greedily, which is unambiguous because itemsets
/// never contain two related items (two ancestors of one descendant item
/// would be related to each other). The pruning loop works through
/// direct parents instead, but this is the invariant it relies on and
/// the tests check it explicitly.
#[cfg_attr(not(test), allow(dead_code))]
fn is_ancestor_itemset(anc: &Itemset, desc: &Itemset, tax: &Taxonomy) -> bool {
    if anc.len() != desc.len() || anc == desc {
        return false;
    }
    let mut used = vec![false; anc.len()];
    'outer: for &d in desc.items() {
        for (i, &a) in anc.items().iter().enumerate() {
            if used[i] {
                continue;
            }
            if a == d || tax.is_ancestor(a, d) {
                used[i] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// The direct parent itemsets of `set` (one member lifted one level),
/// restricted to itemsets present in `index`.
fn parent_itemsets_in(set: &Itemset, tax: &Taxonomy, index: &FxHashSet<Itemset>) -> Vec<Itemset> {
    let mut out = Vec::new();
    for (i, &it) in set.items().iter().enumerate() {
        if let Some(p) = tax.parent(it) {
            let mut items: Vec<ItemId> = set.items().to_vec();
            items[i] = p;
            let cand = Itemset::from_unsorted(items);
            if cand.len() == set.len() && index.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

/// Mines all large itemsets with the Stratify strategy. Results are
/// identical to [`crate::sequential::cumulate`]; only the scan/candidate
/// schedule differs. `stratum_batch` controls how many depth strata are
/// counted per database scan (≥ 1).
pub fn stratify(
    part: &dyn TransactionSource,
    tax: &Taxonomy,
    params: &MiningParams,
    stratum_batch: u32,
) -> Result<MiningOutput> {
    params.validate()?;
    assert!(stratum_batch >= 1);
    let num_transactions = part.num_transactions() as u64;
    let min_support_count = params.min_support_count(num_transactions);

    // Pass 1 is exactly Cumulate's.
    let mut item_counts = vec![0u64; tax.num_items() as usize];
    let mut extended = Vec::new();
    let mut scan = part.scan()?;
    while let Some(t) = scan.next_slice()? {
        tax.extend_transaction_into(t, &mut extended);
        for &it in &extended {
            item_counts[it.index()] += 1;
        }
    }
    drop(scan);
    let l1 = large_items_from_counts(&item_counts, min_support_count);
    let mut passes = vec![l1];

    let mut k = 2;
    loop {
        if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
            passes.retain(|p| !p.itemsets.is_empty());
            break;
        }
        if let Some(max) = params.max_pass {
            if k > max {
                break;
            }
        }
        let prev = &passes.last().expect("nonempty").itemsets;
        let mut candidates: Vec<Itemset> = if k == 2 {
            let l1_items: Vec<ItemId> = prev.iter().map(|(s, _)| s.items()[0]).collect();
            generate_pairs(&l1_items, Some(tax))
        } else {
            let prev_sets: Vec<Itemset> = prev.iter().map(|(s, _)| s.clone()).collect();
            generate_candidates(&prev_sets)
        };
        if candidates.is_empty() {
            break;
        }
        // Order by stratum (shallowest first; itemset order within a
        // stratum for determinism).
        candidates.sort_by_key(|c| (itemset_depth(c, tax), c.clone()));

        let view = PrunedView::new(tax, items_in_candidates(&candidates));
        let candidate_index: FxHashSet<Itemset> = candidates.iter().cloned().collect();
        // small[c]: c was found small (directly or via an ancestor) —
        // its descendants need never be counted.
        let mut known_small: FxHashSet<Itemset> = FxHashSet::default();
        let mut counted: FxHashMap<Itemset, u64> = FxHashMap::default();

        let mut cursor = 0;
        while cursor < candidates.len() {
            // Next batch: every not-yet-pruned candidate within the next
            // `stratum_batch` depth levels.
            let base_depth = itemset_depth(&candidates[cursor], tax);
            let mut batch = Vec::new();
            let mut next = cursor;
            while next < candidates.len() {
                let c = &candidates[next];
                if itemset_depth(c, tax) >= base_depth + stratum_batch {
                    break;
                }
                // Pruned when any direct parent itemset is known small.
                let pruned = parent_itemsets_in(c, tax, &candidate_index)
                    .iter()
                    .any(|p| known_small.contains(p));
                if pruned {
                    known_small.insert(c.clone());
                } else {
                    batch.push(c.clone());
                }
                next += 1;
            }
            cursor = next;
            if batch.is_empty() {
                continue;
            }

            let mut counter = build_counter(params.counter, k, &batch);
            let mut scan = part.scan()?;
            while let Some(t) = scan.next_slice()? {
                view.extend_transaction_into(tax, t, &mut extended);
                counter.count_transaction(&extended);
            }
            drop(scan);
            for (set, count) in Box::new(counter).into_counts() {
                if count >= min_support_count {
                    counted.insert(set, count);
                } else {
                    known_small.insert(set);
                }
            }
        }

        let mut large: Vec<(Itemset, u64)> = counted.into_iter().collect();
        large.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        if large.is_empty() {
            break;
        }
        passes.push(LargePass { k, itemsets: large });
        k += 1;
    }

    Ok(MiningOutput {
        algorithm: Algorithm::Cumulate, // answer-compatible with Cumulate
        num_transactions,
        min_support_count,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::cumulate;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    fn sa95() -> (Taxonomy, PartitionedDatabase) {
        let mut b = TaxonomyBuilder::new(8);
        for (c, p) in [(1, 0), (2, 0), (3, 1), (4, 1), (6, 5), (7, 5)] {
            b.edge(c, p).unwrap();
        }
        let tax = b.build().unwrap();
        let txns = vec![
            ids(&[2]),
            ids(&[3, 7]),
            ids(&[4, 7]),
            ids(&[6]),
            ids(&[6]),
            ids(&[3]),
        ];
        (
            tax,
            PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap(),
        )
    }

    #[test]
    fn itemset_depth_sums_member_depths() {
        let (tax, _) = sa95();
        assert_eq!(itemset_depth(&iset![0, 5], &tax), 0);
        assert_eq!(itemset_depth(&iset![1, 5], &tax), 1);
        assert_eq!(itemset_depth(&iset![3, 7], &tax), 3);
    }

    #[test]
    fn ancestor_itemset_detection() {
        let (tax, _) = sa95();
        assert!(is_ancestor_itemset(&iset![1, 7], &iset![3, 7], &tax));
        assert!(is_ancestor_itemset(&iset![0, 5], &iset![3, 7], &tax));
        assert!(!is_ancestor_itemset(&iset![3, 7], &iset![1, 7], &tax));
        assert!(!is_ancestor_itemset(&iset![1, 7], &iset![1, 7], &tax));
        assert!(!is_ancestor_itemset(&iset![2, 5], &iset![3, 7], &tax));
    }

    #[test]
    fn agrees_with_cumulate_on_sa95_example() {
        let (tax, db) = sa95();
        for batch in [1u32, 2, 100] {
            for minsup in [0.3, 0.15, 0.5] {
                let params = MiningParams::with_min_support(minsup);
                let a = cumulate(db.partition(0), &tax, &params).unwrap();
                let b = stratify(db.partition(0), &tax, &params, batch).unwrap();
                assert_eq!(
                    a.num_large(),
                    b.num_large(),
                    "batch {batch} minsup {minsup}"
                );
                for (x, y) in a.all_large().zip(b.all_large()) {
                    assert_eq!(x, y);
                }
            }
        }
    }

    #[test]
    fn prunes_descendants_of_small_ancestors() {
        // Count scans: with stratum_batch = 1 and a small ancestor
        // stratum, descendant strata must trigger fewer counted
        // candidates. We verify indirectly: small ancestor => descendant
        // never large, and the scan count grows with strata.
        let (tax, db) = sa95();
        let params = MiningParams::with_min_support(0.9); // everything small at k=2
        let out = stratify(db.partition(0), &tax, &params, 1).unwrap();
        assert!(out.large(2).is_none());
    }

    #[test]
    fn stratified_scans_cost_more_io_than_cumulate() {
        let (tax, db) = sa95();
        let params = MiningParams::with_min_support(0.3);
        let before = db.partition(0).bytes_read();
        cumulate(db.partition(0), &tax, &params).unwrap();
        let cumulate_io = db.partition(0).bytes_read() - before;
        let before = db.partition(0).bytes_read();
        stratify(db.partition(0), &tax, &params, 1).unwrap();
        let stratify_io = db.partition(0).bytes_read() - before;
        assert!(
            stratify_io >= cumulate_io,
            "stratify {stratify_io} < cumulate {cumulate_io}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::stratify;
    use crate::params::MiningParams;
    use crate::sequential::cumulate;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
    use gar_types::ItemId;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn stratify_always_matches_cumulate(
            seed in 0u64..500,
            raw in proptest::collection::vec(
                proptest::collection::btree_set(0u32..30, 1..5), 4..30),
            div in 2u32..5,
            batch in 1u32..4,
        ) {
            let tax = synthesize(&SynthTaxonomyConfig {
                num_items: 30,
                num_roots: 3,
                fanout: 3.0,
                seed,
            });
            let txns: Vec<Vec<ItemId>> = raw.into_iter()
                .map(|s| s.into_iter().map(ItemId).collect())
                .collect();
            let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
            let params = MiningParams::with_min_support(1.0 / f64::from(div));
            let a = cumulate(db.partition(0), &tax, &params).unwrap();
            let b = stratify(db.partition(0), &tax, &params, batch).unwrap();
            prop_assert_eq!(a.num_large(), b.num_large());
            for (x, y) in a.all_large().zip(b.all_large()) {
                prop_assert_eq!(x, y);
            }
        }
    }
}
