//! Plain Apriori ([RR94]) — the hierarchy-blind baseline.

use crate::candidate::{generate_candidates, generate_pairs};
use crate::counter::build_counter;
use crate::params::{Algorithm, MiningParams};
use crate::report::{LargePass, MiningOutput};
use crate::sequential::{extract_large, large_items_from_counts};
use gar_storage::TransactionSource;
use gar_types::{ItemId, Itemset, Result};

/// Mines large itemsets without any taxonomy: transactions are counted
/// as-is. `num_items` bounds the item universe (dense pass-1 counting).
///
/// Kept as the reference point the paper's introduction argues against:
/// on hierarchical data it finds only leaf-level itemsets, missing every
/// association that is frequent only at a generalized level (the bench
/// crate's ablation quantifies the difference).
pub fn apriori(
    part: &dyn TransactionSource,
    num_items: u32,
    params: &MiningParams,
) -> Result<MiningOutput> {
    params.validate()?;
    let num_transactions = part.num_transactions() as u64;
    let min_support_count = params.min_support_count(num_transactions);

    let mut item_counts = vec![0u64; num_items as usize];
    let mut buf = Vec::new();
    let mut scan = part.scan()?;
    while scan.next_into(&mut buf)? {
        for it in &buf {
            item_counts[it.index()] += 1;
        }
    }
    drop(scan);
    let mut passes = vec![large_items_from_counts(&item_counts, min_support_count)];

    let mut k = 2;
    loop {
        if passes.last().is_none_or(|p| p.itemsets.is_empty()) {
            passes.retain(|p| !p.itemsets.is_empty());
            break;
        }
        if let Some(max) = params.max_pass {
            if k > max {
                break;
            }
        }
        let prev = &passes.last().expect("nonempty").itemsets;
        let candidates: Vec<Itemset> = if k == 2 {
            let l1: Vec<ItemId> = prev.iter().map(|(s, _)| s.items()[0]).collect();
            generate_pairs(&l1, None)
        } else {
            let prev_sets: Vec<Itemset> = prev.iter().map(|(s, _)| s.clone()).collect();
            generate_candidates(&prev_sets)
        };
        if candidates.is_empty() {
            break;
        }
        let mut counter = build_counter(params.counter, k, &candidates);
        let mut scan = part.scan()?;
        while scan.next_into(&mut buf)? {
            counter.count_transaction(&buf);
        }
        drop(scan);
        let large = extract_large(counter, min_support_count);
        if large.is_empty() {
            break;
        }
        passes.push(LargePass { k, itemsets: large });
        k += 1;
    }

    Ok(MiningOutput {
        algorithm: Algorithm::Apriori,
        num_transactions,
        min_support_count,
        passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::cumulate;
    use gar_storage::PartitionedDatabase;
    use gar_taxonomy::TaxonomyBuilder;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn textbook_example() {
        // Four transactions, 50% support.
        let txns = vec![
            ids(&[1, 3, 4]),
            ids(&[2, 3, 5]),
            ids(&[1, 2, 3, 5]),
            ids(&[2, 5]),
        ];
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let out = apriori(db.partition(0), 6, &MiningParams::with_min_support(0.5)).unwrap();
        let l1: Vec<u32> = out
            .large(1)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.items()[0].raw())
            .collect();
        assert_eq!(l1, vec![1, 2, 3, 5]);
        let l2: Vec<Itemset> = out
            .large(2)
            .unwrap()
            .itemsets
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(l2, vec![iset![1, 3], iset![2, 3], iset![2, 5], iset![3, 5]]);
        let l3 = &out.large(3).unwrap().itemsets;
        assert_eq!(l3, &vec![(iset![2, 3, 5], 2)]);
    }

    #[test]
    fn misses_generalized_associations_cumulate_finds() {
        // Leaves 1 and 2 under parent 0; each leaf alone is infrequent,
        // the parent is frequent. Apriori finds nothing at 60%.
        let mut b = TaxonomyBuilder::new(3);
        b.edge(1, 0).unwrap();
        b.edge(2, 0).unwrap();
        let tax = b.build().unwrap();
        let txns = vec![ids(&[1]), ids(&[2]), ids(&[1]), ids(&[2]), ids(&[1])];
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.8);
        let flat = apriori(db.partition(0), 3, &params).unwrap();
        assert_eq!(flat.num_large(), 0);
        let gen = cumulate(db.partition(0), &tax, &params).unwrap();
        assert_eq!(gen.support_of(&[ItemId(0)]), Some(5));
    }

    #[test]
    fn agrees_with_cumulate_on_flat_taxonomy() {
        let tax = TaxonomyBuilder::new(10).build().unwrap();
        let txns: Vec<Vec<ItemId>> = (0..30u32)
            .map(|i| ids(&[i % 3, 3 + i % 4, 7 + i % 2]))
            .collect();
        let db = PartitionedDatabase::build_in_memory(1, txns.into_iter()).unwrap();
        let params = MiningParams::with_min_support(0.2);
        let a = apriori(db.partition(0), 10, &params).unwrap();
        let c = cumulate(db.partition(0), &tax, &params).unwrap();
        assert_eq!(a.num_large(), c.num_large());
        for (x, y) in a.all_large().zip(c.all_large()) {
            assert_eq!(x, y);
        }
    }
}
