//! Message encodings for the parallel algorithms.
//!
//! Everything a node ships is `u32`/`u64` little-endian, mirroring the
//! storage codec. Three message bodies exist:
//!
//! * **item lists** — the H-HPGM family ships sub-transactions (lists of
//!   item codes); 4 bytes per item, so the Table-6 byte counts mean what
//!   the paper's do ("Node 2 sends 3 items");
//! * **flat k-itemset batches** — HPGM ships generated k-itemsets; the
//!   batch is a flat run of `k·n` item codes (`k` is pass context);
//! * **counted itemset lists** — `L_k^n` fragments flowing to the
//!   coordinator and `L_k` broadcasts coming back.

use bytes::{BufMut, Bytes, BytesMut};
use gar_types::{Error, ItemId, Itemset, Result};

/// Encodes a plain item list (a sub-transaction).
pub fn encode_items(items: &[ItemId]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 * items.len());
    for it in items {
        buf.put_u32_le(it.raw());
    }
    buf.freeze()
}

/// Decodes a plain item list into `out` (cleared first).
pub fn decode_items(payload: &[u8], out: &mut Vec<ItemId>) -> Result<()> {
    if !payload.len().is_multiple_of(4) {
        return Err(Error::Corrupt(format!(
            "item list payload of {} bytes is not a multiple of 4",
            payload.len()
        )));
    }
    out.clear();
    out.reserve(payload.len() / 4);
    for chunk in payload.chunks_exact(4) {
        out.push(ItemId(u32::from_le_bytes(
            chunk.try_into().expect("4 bytes"),
        )));
    }
    Ok(())
}

/// An append-only batch of length-prefixed item lists (sub-transactions),
/// flushed as one message. The H-HPGM family sends a handful of items per
/// transaction per owner; without batching, per-message latency would
/// dwarf the byte savings the algorithm exists for.
pub struct ItemListBatch {
    buf: BytesMut,
    lists: usize,
}

impl Default for ItemListBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl ItemListBatch {
    /// An empty batch, pre-sized for the standard flush threshold (the
    /// senders flush at 16 KiB, so the first fill never regrows).
    pub fn new() -> ItemListBatch {
        ItemListBatch {
            buf: BytesMut::with_capacity(17 * 1024),
            lists: 0,
        }
    }

    /// Appends one item list (framed with a `u32` count).
    pub fn push(&mut self, items: &[ItemId]) {
        self.buf.put_u32_le(items.len() as u32);
        for it in items {
            self.buf.put_u32_le(it.raw());
        }
        self.lists += 1;
    }

    /// Number of lists queued.
    pub fn len(&self) -> usize {
        self.lists
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lists == 0
    }

    /// Current payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Takes the queued payload, leaving the batch empty.
    pub fn take(&mut self) -> Bytes {
        self.lists = 0;
        self.buf.split().freeze()
    }
}

/// Iterates the item lists of a framed batch payload. The scratch buffer
/// is reused across lists.
pub fn for_each_item_list(
    payload: &[u8],
    scratch: &mut Vec<ItemId>,
    mut f: impl FnMut(&[ItemId]) -> Result<()>,
) -> Result<()> {
    let mut pos = 0usize;
    while pos < payload.len() {
        if payload.len() - pos < 4 {
            return Err(Error::Corrupt("item-list frame header truncated".into()));
        }
        let n = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        if payload.len() - pos < 4 * n {
            return Err(Error::Corrupt(format!(
                "item-list frame of {n} items truncated"
            )));
        }
        scratch.clear();
        for chunk in payload[pos..pos + 4 * n].chunks_exact(4) {
            scratch.push(ItemId(u32::from_le_bytes(chunk.try_into().expect("4"))));
        }
        pos += 4 * n;
        f(scratch)?;
    }
    Ok(())
}

/// An append-only batch of k-itemsets, flushed as one message (HPGM ships
/// millions of tiny itemsets; batching is what makes per-message latency
/// survivable — the real SP-2 code did the same).
pub struct ItemsetBatch {
    k: usize,
    buf: BytesMut,
}

impl ItemsetBatch {
    /// An empty batch of k-itemsets, pre-sized for the standard flush
    /// threshold (the senders flush at 16 KiB, so the first fill never
    /// regrows).
    pub fn new(k: usize) -> ItemsetBatch {
        ItemsetBatch {
            k,
            buf: BytesMut::with_capacity(17 * 1024),
        }
    }

    /// Appends one sorted k-itemset.
    pub fn push(&mut self, itemset: &[ItemId]) {
        debug_assert_eq!(itemset.len(), self.k);
        for it in itemset {
            self.buf.put_u32_le(it.raw());
        }
    }

    /// Number of itemsets queued.
    pub fn len(&self) -> usize {
        self.buf.len() / (4 * self.k)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Takes the queued payload, leaving the batch empty.
    pub fn take(&mut self) -> Bytes {
        self.buf.split().freeze()
    }
}

/// Iterates the k-itemsets of a flat batch payload, passing each to `f`.
pub fn for_each_itemset(
    payload: &[u8],
    k: usize,
    mut f: impl FnMut(&[ItemId]) -> Result<()>,
) -> Result<()> {
    let stride = 4 * k;
    if stride == 0 || !payload.len().is_multiple_of(stride) {
        return Err(Error::Corrupt(format!(
            "batch payload of {} bytes is not a multiple of {stride}",
            payload.len()
        )));
    }
    let mut scratch = vec![ItemId(0); k];
    for group in payload.chunks_exact(stride) {
        for (slot, chunk) in scratch.iter_mut().zip(group.chunks_exact(4)) {
            *slot = ItemId(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        f(&scratch)?;
    }
    Ok(())
}

/// Encodes counted itemsets (an `L_k^n` fragment or the full `L_k`).
/// Layout: `u32 n, u32 k`, then `n` records of `k` item codes + `u64`
/// count. `k = 0` with item-count-prefixed records is not needed — all
/// itemsets in one message share their size.
pub fn encode_counted(k: usize, itemsets: &[(Itemset, u64)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + itemsets.len() * (4 * k + 8));
    buf.put_u32_le(itemsets.len() as u32);
    buf.put_u32_le(k as u32);
    for (set, count) in itemsets {
        debug_assert_eq!(set.len(), k);
        for it in set.items() {
            buf.put_u32_le(it.raw());
        }
        buf.put_u64_le(*count);
    }
    buf.freeze()
}

/// Decodes a counted itemset list.
pub fn decode_counted(payload: &[u8]) -> Result<Vec<(Itemset, u64)>> {
    if payload.len() < 8 {
        return Err(Error::Corrupt("counted list shorter than header".into()));
    }
    let (header, body) = payload.split_at(8);
    let (n_bytes, k_bytes) = header.split_at(4);
    let n = u32::from_le_bytes(le_array(n_bytes)?) as usize;
    let k = u32::from_le_bytes(le_array(k_bytes)?) as usize;
    let stride = 4 * k + 8;
    if body.len() != n * stride {
        return Err(Error::Corrupt(format!(
            "counted list body {} bytes, expected {}",
            body.len(),
            n * stride
        )));
    }
    let mut out = Vec::with_capacity(n);
    for rec in body.chunks_exact(stride) {
        let (item_bytes, count_bytes) = rec.split_at(4 * k);
        let mut items = Vec::with_capacity(k);
        for chunk in item_bytes.chunks_exact(4) {
            items.push(ItemId(u32::from_le_bytes(le_array(chunk)?)));
        }
        // Validate the canonical-itemset invariant rather than trusting
        // the wire: a corrupted or adversarial payload must surface as an
        // error, never as a malformed Itemset.
        if !items.iter().zip(items.iter().skip(1)).all(|(a, b)| a < b) {
            return Err(Error::Corrupt(
                "counted list record is not a strictly increasing itemset".into(),
            ));
        }
        let count = u64::from_le_bytes(le_array(count_bytes)?);
        out.push((Itemset::from_sorted(items), count));
    }
    Ok(out)
}

/// Fixed-width little-endian field extraction, with slice-size damage
/// surfacing as [`Error::Corrupt`] instead of a panic.
fn le_array<const N: usize>(bytes: &[u8]) -> Result<[u8; N]> {
    bytes
        .try_into()
        .map_err(|_| Error::Corrupt(format!("truncated {N}-byte field")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_types::iset;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn items_round_trip() {
        let items = ids(&[5, 6, 10]);
        let b = encode_items(&items);
        assert_eq!(b.len(), 12); // "Node 2 sends 3 items" = 12 bytes
        let mut out = Vec::new();
        decode_items(&b, &mut out).unwrap();
        assert_eq!(out, items);
    }

    #[test]
    fn items_reject_ragged_payload() {
        let mut out = Vec::new();
        assert!(decode_items(&[1, 2, 3], &mut out).is_err());
    }

    #[test]
    fn item_list_batch_round_trip() {
        let mut b = ItemListBatch::new();
        assert!(b.is_empty());
        b.push(&ids(&[5, 6, 10]));
        b.push(&ids(&[]));
        b.push(&ids(&[7]));
        assert_eq!(b.len(), 3);
        assert_eq!(b.byte_len(), 28); // 3 u32 headers + 4 u32 items
        let payload = b.take();
        assert!(b.is_empty());
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        for_each_item_list(&payload, &mut scratch, |l| {
            got.push(l.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(got, vec![ids(&[5, 6, 10]), ids(&[]), ids(&[7])]);
    }

    #[test]
    fn item_list_batch_rejects_truncation() {
        let mut b = ItemListBatch::new();
        b.push(&ids(&[1, 2]));
        let payload = b.take();
        let mut scratch = Vec::new();
        assert!(
            for_each_item_list(&payload[..payload.len() - 1], &mut scratch, |_| Ok(())).is_err()
        );
        assert!(for_each_item_list(&payload[..2], &mut scratch, |_| Ok(())).is_err());
    }

    #[test]
    fn batch_round_trip() {
        let mut b = ItemsetBatch::new(2);
        assert!(b.is_empty());
        b.push(&ids(&[1, 2]));
        b.push(&ids(&[3, 15]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.byte_len(), 16);
        let payload = b.take();
        assert!(b.is_empty());
        let mut got = Vec::new();
        for_each_itemset(&payload, 2, |s| {
            got.push(s.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(got, vec![ids(&[1, 2]), ids(&[3, 15])]);
    }

    #[test]
    fn batch_rejects_ragged_payload() {
        let res = for_each_itemset(&[0u8; 12], 2, |_| Ok(()));
        assert!(res.is_err());
    }

    #[test]
    fn counted_round_trip() {
        let sets = vec![(iset![1, 2], 42u64), (iset![3, 15], 7)];
        let b = encode_counted(2, &sets);
        assert_eq!(decode_counted(&b).unwrap(), sets);
    }

    #[test]
    fn counted_empty_list() {
        let b = encode_counted(3, &[]);
        assert_eq!(decode_counted(&b).unwrap(), Vec::new());
    }

    #[test]
    fn counted_rejects_truncation() {
        let sets = vec![(iset![1, 2], 42u64)];
        let b = encode_counted(2, &sets);
        assert!(decode_counted(&b[..b.len() - 1]).is_err());
        assert!(decode_counted(&b[..4]).is_err());
    }
}
