//! End-to-end tests of the `gar-cli` binary: gen → info → mine → rules
//! (→ serve → query), exercising the real executable via `CARGO_BIN_EXE`.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gar-cli"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gar-cli-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_pipeline() {
    let dir = tmp_dir("pipeline");
    let data = dir.join("data");
    let gout = dir.join("large.gout");

    let out = run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--preset",
        "R30F10",
        "--scale",
        "0.001",
        "--partitions",
        "3",
        "--seed",
        "9",
    ]));
    assert!(out.contains("wrote"), "{out}");
    assert!(data.join("part-0000.txn").exists());
    assert!(data.join("taxonomy.gtax").exists());
    assert!(data.join("dataset.txt").exists());

    let out = run_ok(bin().args(["info", "--data", data.to_str().unwrap()]));
    assert!(out.contains("total: 3200 transactions"), "{out}");
    assert!(out.contains("taxonomy:"), "{out}");

    let out = run_ok(bin().args([
        "mine",
        "--data",
        data.to_str().unwrap(),
        "--min-support",
        "0.02",
        "--max-pass",
        "2",
        "--algorithm",
        "h-hpgm-pgd",
        "--out",
        gout.to_str().unwrap(),
    ]));
    assert!(out.contains("H-HPGM-PGD"), "{out}");
    assert!(out.contains("large itemsets"), "{out}");
    assert!(gout.exists());

    let out = run_ok(bin().args([
        "rules",
        "--output",
        gout.to_str().unwrap(),
        "--taxonomy",
        data.join("taxonomy.gtax").to_str().unwrap(),
        "--min-confidence",
        "0.6",
        "--top",
        "5",
    ]));
    assert!(out.contains("rules at confidence"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// mine → rules --out → serve → query, over a real ephemeral port.
#[test]
fn serve_and_query_round_trip() {
    let dir = tmp_dir("serve");
    let data = dir.join("data");
    let gout = dir.join("large.gout");
    let grul = dir.join("rules.grul");

    run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--preset",
        "R30F10",
        "--scale",
        "0.001",
        "--partitions",
        "2",
        "--seed",
        "9",
    ]));
    run_ok(bin().args([
        "mine",
        "--data",
        data.to_str().unwrap(),
        "--min-support",
        "0.02",
        "--max-pass",
        "2",
        "--out",
        gout.to_str().unwrap(),
    ]));
    let out = run_ok(bin().args([
        "rules",
        "--output",
        gout.to_str().unwrap(),
        "--taxonomy",
        data.join("taxonomy.gtax").to_str().unwrap(),
        "--min-confidence",
        "0.3",
        "--out",
        grul.to_str().unwrap(),
    ]));
    assert!(out.contains("canonical order"), "{out}");
    assert!(grul.exists());

    // Start the server on an ephemeral port and parse the bound
    // address from its first stdout line.
    let mut server = bin()
        .args([
            "serve",
            "--rules",
            grul.to_str().unwrap(),
            "--port",
            "0",
            "--shards",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut first_line = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    assert!(first_line.contains("serving"), "{first_line}");
    let addr = first_line
        .split_whitespace()
        .find(|tok| tok.contains(':'))
        .expect("address in listening line")
        .to_string();

    let out = run_ok(bin().args(["query", "--addr", &addr, "--basket", "1,2,3", "--top", "5"]));
    assert!(
        out.contains("score") || out.contains("no recommendations"),
        "{out}"
    );
    let out = run_ok(bin().args(["query", "--addr", &addr, "--shutdown"]));
    assert!(out.contains("acknowledged shutdown"), "{out}");
    assert!(server.wait().unwrap().success());

    std::fs::remove_dir_all(&dir).ok();
}

/// The `rules` subcommand classifies failures like `mine` does:
/// exit 2 for bad flags, 3 for a missing or corrupt artifact.
#[test]
fn rules_exit_codes_match_mine() {
    // Missing a required flag → 2.
    let out = bin().args(["rules"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--output"));

    // Nonexistent mining output → 3 (I/O).
    let out = bin()
        .args([
            "rules",
            "--output",
            "/nonexistent.gout",
            "--min-confidence",
            "0.5",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));

    // Corrupt mining output → 3.
    let dir = tmp_dir("rules-exit");
    let bad = dir.join("bad.gout");
    std::fs::write(&bad, b"not a mining output").unwrap();
    let out = bin()
        .args([
            "rules",
            "--output",
            bad.to_str().unwrap(),
            "--min-confidence",
            "0.5",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));

    // An unparseable flag value is a configuration error → 2 (checked
    // before any artifact I/O, so the corrupt file does not mask it).
    let out = bin()
        .args([
            "rules",
            "--output",
            bad.to_str().unwrap(),
            "--min-confidence",
            "abc",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

/// Serving a missing or corrupt rule store fails with exit 3; a bad
/// shard count with exit 2.
#[test]
fn serve_exit_codes() {
    let out = bin()
        .args(["serve", "--rules", "/nonexistent.grul"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));

    let dir = tmp_dir("serve-exit");
    let bad = dir.join("bad.grul");
    std::fs::write(&bad, b"GRULgarbage").unwrap();
    let out = bin()
        .args(["serve", "--rules", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));

    let out = bin()
        .args(["serve", "--rules", bad.to_str().unwrap(), "--shards", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sequential_mining_agrees_with_parallel() {
    let dir = tmp_dir("seq");
    let data = dir.join("data");
    run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--scale",
        "0.001",
        "--partitions",
        "2",
        "--seed",
        "4",
    ]));
    let count_of = |algorithm: &str| -> String {
        let out = run_ok(bin().args([
            "mine",
            "--data",
            data.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--max-pass",
            "2",
            "--algorithm",
            algorithm,
        ]));
        out.lines()
            .find(|l| l.contains("large itemsets across"))
            .unwrap_or_default()
            .split(':')
            .nth(1)
            .unwrap_or_default()
            .trim()
            .to_string()
    };
    let seq = count_of("cumulate");
    let par = count_of("npgm");
    assert_eq!(
        seq.split(' ').next(),
        par.split(' ').next(),
        "sequential vs parallel counts differ: '{seq}' vs '{par}'"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let out = bin().args(["mine"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));

    let out = bin()
        .args(["mine", "--data", "/nonexistent", "--min-support", "0.1"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn usage_prints_without_args() {
    let out = bin().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

/// An unknown `--algo` is a typed configuration error: exit code 2 and
/// a message listing every valid algorithm name, FP-Growth included.
#[test]
fn unknown_algo_is_a_typed_config_error_listing_the_names() {
    let out = bin()
        .args([
            "mine",
            "--data",
            "/nonexistent",
            "--min-support",
            "0.1",
            "--algo",
            "frobnicate",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "expected exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown algorithm 'frobnicate'"),
        "stderr should name the bad algorithm: {stderr}"
    );
    for name in ["Cumulate", "NPGM", "H-HPGM-FGD", "FP-Growth"] {
        assert!(
            stderr.contains(name),
            "stderr should list '{name}': {stderr}"
        );
    }
}

/// `--algo fp-growth` runs the pattern-growth miner end to end and
/// reports the same large-itemset count as Cumulate.
#[test]
fn fp_growth_via_algo_alias_agrees_with_cumulate() {
    let dir = tmp_dir("fpg");
    let data = dir.join("data");
    run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--preset",
        "R30F10",
        "--scale",
        "0.001",
        "--partitions",
        "3",
        "--seed",
        "11",
    ]));
    let count_of = |flag: &str, algorithm: &str| -> String {
        let out = run_ok(bin().args([
            "mine",
            "--data",
            data.to_str().unwrap(),
            "--min-support",
            "0.03",
            flag,
            algorithm,
        ]));
        out.lines()
            .find(|l| l.contains("large itemsets across"))
            .unwrap_or_default()
            .split(':')
            .nth(1)
            .unwrap_or_default()
            .trim()
            .to_string()
    };
    let fpg = count_of("--algo", "fp-growth");
    let seq = count_of("--algorithm", "cumulate");
    assert_eq!(
        fpg.split(' ').next(),
        seq.split(' ').next(),
        "fp-growth vs cumulate counts differ: '{fpg}' vs '{seq}'"
    );
    std::fs::remove_dir_all(&dir).ok();
}
