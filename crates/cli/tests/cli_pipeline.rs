//! End-to-end tests of the `gar-cli` binary: gen → info → mine → rules,
//! exercising the real executable via `CARGO_BIN_EXE`.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gar-cli"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gar-cli-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn full_pipeline() {
    let dir = tmp_dir("pipeline");
    let data = dir.join("data");
    let gout = dir.join("large.gout");

    let out = run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--preset",
        "R30F10",
        "--scale",
        "0.001",
        "--partitions",
        "3",
        "--seed",
        "9",
    ]));
    assert!(out.contains("wrote"), "{out}");
    assert!(data.join("part-0000.txn").exists());
    assert!(data.join("taxonomy.gtax").exists());
    assert!(data.join("dataset.txt").exists());

    let out = run_ok(bin().args(["info", "--data", data.to_str().unwrap()]));
    assert!(out.contains("total: 3200 transactions"), "{out}");
    assert!(out.contains("taxonomy:"), "{out}");

    let out = run_ok(bin().args([
        "mine",
        "--data",
        data.to_str().unwrap(),
        "--min-support",
        "0.02",
        "--max-pass",
        "2",
        "--algorithm",
        "h-hpgm-pgd",
        "--out",
        gout.to_str().unwrap(),
    ]));
    assert!(out.contains("H-HPGM-PGD"), "{out}");
    assert!(out.contains("large itemsets"), "{out}");
    assert!(gout.exists());

    let out = run_ok(bin().args([
        "rules",
        "--output",
        gout.to_str().unwrap(),
        "--taxonomy",
        data.join("taxonomy.gtax").to_str().unwrap(),
        "--min-confidence",
        "0.6",
        "--top",
        "5",
    ]));
    assert!(out.contains("rules at confidence"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sequential_mining_agrees_with_parallel() {
    let dir = tmp_dir("seq");
    let data = dir.join("data");
    run_ok(bin().args([
        "gen",
        "--out",
        data.to_str().unwrap(),
        "--scale",
        "0.001",
        "--partitions",
        "2",
        "--seed",
        "4",
    ]));
    let count_of = |algorithm: &str| -> String {
        let out = run_ok(bin().args([
            "mine",
            "--data",
            data.to_str().unwrap(),
            "--min-support",
            "0.03",
            "--max-pass",
            "2",
            "--algorithm",
            algorithm,
        ]));
        out.lines()
            .find(|l| l.contains("large itemsets across"))
            .unwrap_or_default()
            .split(':')
            .nth(1)
            .unwrap_or_default()
            .trim()
            .to_string()
    };
    let seq = count_of("cumulate");
    let par = count_of("npgm");
    assert_eq!(
        seq.split(' ').next(),
        par.split(' ').next(),
        "sequential vs parallel counts differ: '{seq}' vs '{par}'"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let out = bin().args(["mine"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data"));

    let out = bin()
        .args(["mine", "--data", "/nonexistent", "--min-support", "0.1"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn usage_prints_without_args() {
    let out = bin().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
