//! `gar-cli mine` — run a mining algorithm over a dataset directory.

use crate::args::Args;
use crate::commands::{load_taxonomy, open_partitions, ChainedSource};
use gar_cluster::{ClusterConfig, FaultPlan};
use gar_mining::parallel::{mine_parallel_with, MineOptions};
use gar_mining::persist::{algorithm_by_name, save_output};
use gar_mining::sequential::{apriori, cumulate};
use gar_mining::{Algorithm, MiningOutput, MiningParams};
use gar_obs::{Obs, Stopwatch};
use gar_storage::PartitionedDatabase;
use gar_types::Result;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let dir = Path::new(args.require("data")?);
    let min_support: f64 = args.require_parsed("min-support")?;
    // `--algo` is the short alias for `--algorithm`.
    let algo_name = args
        .get("algo")
        .or_else(|| args.get("algorithm"))
        .unwrap_or("H-HPGM-FGD");
    let algorithm = algorithm_by_name(algo_name)?;
    let memory_mb: u64 = args.get_or("memory-mb", 64)?;

    let mut params = MiningParams::with_min_support(min_support);
    if let Some(k) = args.get("max-pass") {
        params = params.max_pass(
            k.parse()
                .map_err(|_| gar_types::Error::InvalidConfig(format!("bad --max-pass '{k}'")))?,
        );
    }
    params.validate()?;

    let mut parts = open_partitions(dir)?;
    // `--flat` lifts record-stream partitions into the zero-copy flat
    // representation up front, so every subsequent pass lends borrowed
    // slices instead of re-decoding the file (`part-*.gfp` inputs are
    // already flat).
    if args.has_switch("flat") {
        parts = parts
            .into_iter()
            .map(|p| -> Result<Box<dyn gar_storage::TransactionSource>> {
                Ok(Box::new(gar_storage::FlatPartition::from_source(
                    p.as_ref(),
                )?))
            })
            .collect::<Result<_>>()?;
    }
    let tax = load_taxonomy(dir)?;
    let started = Stopwatch::start();

    // Observability is opt-in: enabling it costs a little bookkeeping per
    // message/pass, so only pay when an output path asks for it.
    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let obs = if metrics_out.is_some() || trace_out.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let output: MiningOutput = match algorithm {
        Algorithm::Cumulate => {
            let chain = ChainedSource::new(&parts);
            cumulate(&chain, &tax, &params)?
        }
        Algorithm::Apriori => {
            let chain = ChainedSource::new(&parts);
            apriori(&chain, tax.num_items(), &params)?
        }
        parallel_alg => {
            let nodes = parts.len();
            // Reopen through the PartitionedDatabase wrapper for the
            // parallel entry point (one partition = one node).
            let db = PartitionedDatabase::from_parts(parts);
            let mut cluster =
                ClusterConfig::new(nodes, memory_mb * 1024 * 1024).with_obs(obs.clone());
            if let Some(spec) = args.get("faults") {
                cluster = cluster.with_faults(FaultPlan::parse(spec)?);
            }
            if let Some(ms) = args.get("deadline-ms") {
                let ms: u64 = ms.parse().map_err(|_| {
                    gar_types::Error::InvalidConfig(format!("bad --deadline-ms '{ms}'"))
                })?;
                cluster = cluster.with_deadline(Duration::from_millis(ms));
            }
            let opts = MineOptions {
                checkpoint_dir: args.get("checkpoint-dir").map(PathBuf::from),
                resume: args.has_switch("resume"),
                max_node_failures: args.get_or("max-node-failures", 0)?,
            };
            let report = match parallel_alg {
                // The pattern-growth family has its own driver crate.
                Algorithm::FpGrowth => {
                    gar_fpg::mine_parallel_with(&db, &tax, &params, &cluster, &opts)?
                }
                apriori_alg => {
                    mine_parallel_with(apriori_alg, &db, &tax, &params, &cluster, &opts)?
                }
            };
            println!(
                "{} on {} nodes: wall {:?}, modeled SP-2 time {:.2}s",
                algorithm.name(),
                report.num_nodes,
                report.wall,
                report.modeled_seconds
            );
            println!(
                "{:>5} {:>12} {:>10} {:>10} {:>12}",
                "pass", "candidates", "dup", "large", "avg MB recv"
            );
            for p in &report.pass_reports {
                println!(
                    "{:>5} {:>12} {:>10} {:>10} {:>12.3}{}",
                    p.k,
                    p.num_candidates,
                    p.num_duplicated,
                    p.num_large,
                    p.avg_mb_received(),
                    if p.restored { "  (restored)" } else { "" }
                );
            }
            for note in &report.degraded {
                println!("degraded mode: {note}");
            }
            report.output
        }
    };

    println!(
        "{}: {} large itemsets across {} passes in {:?} (min support {:.3}% = {} txns)",
        algorithm.name(),
        output.num_large(),
        output.passes.len(),
        started.elapsed(),
        min_support * 100.0,
        output.min_support_count
    );

    if let Some(path) = metrics_out {
        std::fs::write(path, obs.metrics().to_json()).map_err(|e| gar_types::Error::Io {
            context: format!("writing metrics to {path}"),
            source: e,
        })?;
        println!("wrote {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, obs.chrome_trace_json()).map_err(|e| gar_types::Error::Io {
            context: format!("writing trace to {path}"),
            source: e,
        })?;
        println!("wrote {path} (load in chrome://tracing or ui.perfetto.dev)");
    }

    if let Some(out_path) = args.get("out") {
        save_output(&output, out_path)?;
        println!("wrote {out_path}");
    }
    Ok(())
}
