//! `gar-cli info` — describe a dataset directory.

use crate::args::Args;
use crate::commands::{load_taxonomy, open_partitions, META_FILE};
use gar_types::Result;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let dir = Path::new(args.require("data")?);
    let parts = open_partitions(dir)?;
    let tax = load_taxonomy(dir)?;

    println!("dataset: {}", dir.display());
    if let Ok(meta) = std::fs::read_to_string(dir.join(META_FILE)) {
        for line in meta.lines() {
            println!("  {line}");
        }
    }
    println!("partitions:");
    let mut total_txns = 0usize;
    let mut total_bytes = 0u64;
    for (i, p) in parts.iter().enumerate() {
        println!(
            "  part {i:>3}: {:>9} txns  {:>9.1} KiB",
            p.num_transactions(),
            p.size_bytes() as f64 / 1024.0
        );
        total_txns += p.num_transactions();
        total_bytes += p.size_bytes();
    }
    println!(
        "total: {total_txns} transactions, {:.1} MiB",
        total_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "taxonomy: {} items, {} roots, {} leaves, {} levels",
        tax.num_items(),
        tax.roots().len(),
        tax.leaves().len(),
        tax.max_depth() + 1
    );

    // A quick shape check: mean transaction size from the first partition.
    let mut scan = parts[0].scan()?;
    let mut buf = Vec::new();
    let (mut n, mut items) = (0usize, 0usize);
    while scan.next_into(&mut buf)? && n < 10_000 {
        n += 1;
        items += buf.len();
    }
    if n > 0 {
        println!(
            "mean transaction size (first {n} of partition 0): {:.1}",
            items as f64 / n as f64
        );
    }
    Ok(())
}
