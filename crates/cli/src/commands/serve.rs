//! `gar-cli serve` — load a `GRUL` rule store and answer basket queries
//! over TCP until a shutdown frame arrives.
//!
//! `--watch-store` turns on zero-downtime refresh: a poller thread
//! watches the rule file's mtime and hot-swaps the store into a new
//! epoch whenever it changes. A corrupt or torn write is rejected by
//! the store checksum and the old epoch keeps answering.

use crate::args::Args;
use gar_cluster::FaultPlan;
use gar_obs::Obs;
use gar_serve::{serve, ReloadHandle, RuleStore, ServerConfig};
use gar_types::Result;
use std::io::Write;
use std::time::{Duration, SystemTime};

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let rules_path = args.require("rules")?;
    let port: u16 = args.get_or("port", 0)?;
    let shards: usize = args.get_or("shards", 1)?;
    let deadline_ms: u64 = args.get_or("deadline-ms", 5000)?;
    let queue_depth: usize = args.get_or("queue-depth", 64)?;
    // Hot-answer cache entries; 0 (default) disables the cache so a
    // default server stays byte-for-byte deterministic in its metrics.
    let cache: usize = args.get_or("cache", 0)?;
    if shards == 0 {
        return Err(gar_types::Error::InvalidConfig(
            "--shards must be at least 1".into(),
        ));
    }
    if queue_depth == 0 {
        return Err(gar_types::Error::InvalidConfig(
            "--queue-depth must be at least 1".into(),
        ));
    }
    let faults = match args.get("faults") {
        Some(spec) => FaultPlan::parse(spec)?,
        None => FaultPlan::default(),
    };
    let watch_store = args.has_switch("watch-store");

    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let obs = if metrics_out.is_some() || trace_out.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let store = RuleStore::load(rules_path)?;
    let num_rules = store.rules.len();
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_millis(deadline_ms),
        queue_depth,
        cache_capacity: cache,
        faults,
        ..ServerConfig::default()
    };
    let server = serve(&format!("127.0.0.1:{port}"), store, cfg, obs.clone())?;
    // Scripts (and the smoke harness) parse this line for the bound
    // address, so flush it before blocking.
    println!(
        "serving {num_rules} rules on {} ({shards} shards)",
        server.local_addr()
    );
    std::io::stdout()
        .flush()
        .map_err(|e| gar_types::Error::io("flushing stdout", e))?;

    let watcher = watch_store.then(|| {
        let handle = server.reload_handle();
        let path = rules_path.to_string();
        std::thread::spawn(move || watch_store_loop(&handle, &path))
    });

    // lint:allow(wait-loop): Server::wait is a thread join, not a Condvar
    server.wait()?;
    if let Some(watcher) = watcher {
        // The poller notices `is_running()` going false within one tick.
        drop(watcher.join());
    }

    if let Some(path) = metrics_out {
        std::fs::write(path, obs.metrics().to_json())
            .map_err(|e| gar_types::Error::io(format!("writing metrics to {path}"), e))?;
        println!("wrote {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, obs.chrome_trace_json())
            .map_err(|e| gar_types::Error::io(format!("writing trace to {path}"), e))?;
        println!("wrote {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}

/// Polls the rule file's mtime and hot-swaps it into a new epoch when it
/// changes. A failed swap (torn write caught by the store checksum, or
/// the file briefly missing mid-rewrite) is reported and retried on the
/// next change — the serving epoch is untouched either way.
fn watch_store_loop(handle: &ReloadHandle, path: &str) {
    let mut last_seen = mtime_of(path);
    while handle.is_running() {
        std::thread::sleep(Duration::from_millis(200));
        let now = mtime_of(path);
        if now == last_seen || now.is_none() {
            continue;
        }
        last_seen = now;
        match handle.reload(path) {
            Ok(epoch) => {
                println!("reloaded {path} into epoch {epoch}");
                drop(std::io::stdout().flush());
            }
            Err(e) => {
                eprintln!("reload of {path} rejected (old epoch keeps serving): {e}");
            }
        }
    }
}

/// The file's mtime, or `None` while it is missing (mid-rewrite).
fn mtime_of(path: &str) -> Option<SystemTime> {
    std::fs::metadata(path).ok().and_then(|m| m.modified().ok())
}
