//! `gar-cli serve` — load a `GRUL` rule store and answer basket queries
//! over TCP until a shutdown frame arrives.

use crate::args::Args;
use gar_obs::Obs;
use gar_serve::{serve, RuleStore, ServerConfig};
use gar_types::Result;
use std::io::Write;
use std::time::Duration;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let rules_path = args.require("rules")?;
    let port: u16 = args.get_or("port", 0)?;
    let shards: usize = args.get_or("shards", 1)?;
    let deadline_ms: u64 = args.get_or("deadline-ms", 5000)?;
    if shards == 0 {
        return Err(gar_types::Error::InvalidConfig(
            "--shards must be at least 1".into(),
        ));
    }

    let metrics_out = args.get("metrics-out");
    let trace_out = args.get("trace-out");
    let obs = if metrics_out.is_some() || trace_out.is_some() {
        Obs::enabled()
    } else {
        Obs::disabled()
    };

    let store = RuleStore::load(rules_path)?;
    let num_rules = store.rules.len();
    let cfg = ServerConfig {
        shards,
        deadline: Duration::from_millis(deadline_ms),
    };
    let server = serve(&format!("127.0.0.1:{port}"), store, cfg, obs.clone())?;
    // Scripts (and the smoke harness) parse this line for the bound
    // address, so flush it before blocking.
    println!(
        "serving {num_rules} rules on {} ({shards} shards)",
        server.local_addr()
    );
    std::io::stdout()
        .flush()
        .map_err(|e| gar_types::Error::io("flushing stdout", e))?;

    // lint:allow(wait-loop): Server::wait is a thread join, not a Condvar
    server.wait()?;

    if let Some(path) = metrics_out {
        std::fs::write(path, obs.metrics().to_json())
            .map_err(|e| gar_types::Error::io(format!("writing metrics to {path}"), e))?;
        println!("wrote {path}");
    }
    if let Some(path) = trace_out {
        std::fs::write(path, obs.chrome_trace_json())
            .map_err(|e| gar_types::Error::io(format!("writing trace to {path}"), e))?;
        println!("wrote {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}
