//! `gar-cli gen` — synthesize a dataset directory.

use crate::args::Args;
use crate::commands::{META_FILE, TAXONOMY_FILE};
use gar_datagen::{presets, TransactionGenerator};
use gar_storage::{FlatPartition, PartitionWriter};
use gar_types::{Error, Result};
use std::io::Write;
use std::path::Path;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let out = Path::new(args.require("out")?);
    let preset = args.get("preset").unwrap_or("R30F5");
    let scale: f64 = args.get_or("scale", 0.01)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let partitions: usize = args.get_or("partitions", 8)?;
    if partitions == 0 {
        return Err(Error::InvalidConfig("--partitions must be >= 1".into()));
    }
    let format = args.get("format").unwrap_or("txn");
    if format != "txn" && format != "flat" {
        return Err(Error::InvalidConfig(format!(
            "unknown --format '{format}' (expected txn or flat)"
        )));
    }

    let spec = presets::by_name(preset, seed)
        .ok_or_else(|| {
            Error::InvalidConfig(format!(
                "unknown preset '{preset}' (expected R30F5, R30F3 or R30F10)"
            ))
        })?
        .scaled(scale);
    spec.validate()?;

    std::fs::create_dir_all(out)
        .map_err(|e| Error::io(format!("creating {}", out.display()), e))?;

    println!(
        "generating {} — {} transactions, {} items, {} roots, fanout {} -> {} partitions",
        spec.name, spec.num_transactions, spec.num_items, spec.num_roots, spec.fanout, partitions
    );

    let mut generator = TransactionGenerator::new(&spec)?;
    let mut count = 0usize;
    let mut total_bytes = 0;
    if format == "flat" {
        // Zero-copy flat partitions: built in memory, bulk-written as
        // `GFP1` files that load without per-record decoding.
        let mut builders: Vec<FlatPartition> =
            (0..partitions).map(|_| FlatPartition::new()).collect();
        for t in generator.by_ref() {
            builders[count % partitions].push(&t);
            count += 1;
        }
        for (i, b) in builders.iter().enumerate() {
            b.write_to(out.join(format!("part-{i:04}.gfp")))?;
            total_bytes += b.size_bytes();
        }
    } else {
        let mut writers: Vec<PartitionWriter> = (0..partitions)
            .map(|i| PartitionWriter::create(out.join(format!("part-{i:04}.txn"))))
            .collect::<Result<_>>()?;
        for t in generator.by_ref() {
            writers[count % partitions].write(&t)?;
            count += 1;
        }
        for w in writers {
            total_bytes += w.finish()?.size_bytes();
        }
    }
    let taxonomy = generator.into_taxonomy();
    gar_taxonomy::io::save(&taxonomy, out.join(TAXONOMY_FILE))?;

    let meta = format!(
        "name: {}\ntransactions: {}\nitems: {}\nroots: {}\nfanout: {}\n\
         levels: {}\npatterns: {}\nseed: {}\npartitions: {}\n",
        spec.name,
        count,
        spec.num_items,
        spec.num_roots,
        spec.fanout,
        taxonomy.max_depth() + 1,
        spec.num_patterns,
        seed,
        partitions
    );
    let mut f = std::fs::File::create(out.join(META_FILE))
        .map_err(|e| Error::io("creating dataset.txt", e))?;
    f.write_all(meta.as_bytes())
        .map_err(|e| Error::io("writing dataset.txt", e))?;

    println!(
        "wrote {count} transactions ({:.1} MiB) + {TAXONOMY_FILE} + {META_FILE} to {}",
        total_bytes as f64 / (1024.0 * 1024.0),
        out.display()
    );
    Ok(())
}
