//! The CLI subcommands.

pub mod gen;
pub mod info;
pub mod mine;
pub mod query;
pub mod rules;
pub mod serve;

use gar_storage::{DiskPartition, FlatPartition, TransactionSource};
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Result};
use std::path::{Path, PathBuf};

/// Name of the taxonomy file inside a dataset directory.
pub const TAXONOMY_FILE: &str = "taxonomy.gtax";
/// Name of the human-readable metadata file inside a dataset directory.
pub const META_FILE: &str = "dataset.txt";

/// Opens every partition of a dataset directory, sorted by file name
/// (= node id). Both partition formats are accepted: record-stream
/// `part-*.txn` files and flat zero-copy `part-*.gfp` files (the latter
/// load fully into memory, so every scan pass lends borrowed slices).
pub fn open_partitions(dir: &Path) -> Result<Vec<Box<dyn TransactionSource>>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::io(format!("reading dataset dir {}", dir.display()), e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("part-") && (n.ends_with(".txn") || n.ends_with(".gfp"))
            })
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(Error::InvalidConfig(format!(
            "{} contains no part-*.txn or part-*.gfp partitions (not a dataset dir?)",
            dir.display()
        )));
    }
    paths
        .into_iter()
        .map(|p| -> Result<Box<dyn TransactionSource>> {
            if p.extension().is_some_and(|e| e == "gfp") {
                Ok(Box::new(FlatPartition::open(&p)?))
            } else {
                Ok(Box::new(DiskPartition::open(&p)?))
            }
        })
        .collect()
}

/// Loads the taxonomy of a dataset directory.
pub fn load_taxonomy(dir: &Path) -> Result<Taxonomy> {
    gar_taxonomy::io::load(dir.join(TAXONOMY_FILE))
}

/// A read-only concatenation of partitions, presented as one
/// [`TransactionSource`] — what the sequential algorithms scan.
pub struct ChainedSource<'a> {
    parts: &'a [Box<dyn TransactionSource>],
}

impl<'a> ChainedSource<'a> {
    /// Chains `parts` in order.
    pub fn new(parts: &'a [Box<dyn TransactionSource>]) -> ChainedSource<'a> {
        ChainedSource { parts }
    }
}

impl TransactionSource for ChainedSource<'_> {
    fn num_transactions(&self) -> usize {
        self.parts.iter().map(|p| p.num_transactions()).sum()
    }

    fn scan(&self) -> Result<Box<dyn gar_storage::TransactionScan + '_>> {
        Ok(Box::new(ChainedScan {
            parts: self.parts,
            current: None,
            next_part: 0,
            buf: Vec::new(),
        }))
    }

    fn bytes_read(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes_read()).sum()
    }

    fn size_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }
}

struct ChainedScan<'a> {
    parts: &'a [Box<dyn TransactionSource>],
    current: Option<Box<dyn gar_storage::TransactionScan + 'a>>,
    next_part: usize,
    buf: Vec<ItemId>,
}

impl gar_storage::TransactionScan for ChainedScan<'_> {
    fn next_slice(&mut self) -> Result<Option<&[ItemId]>> {
        loop {
            if let Some(scan) = self.current.as_mut() {
                if scan.next_into(&mut self.buf)? {
                    return Ok(Some(&self.buf));
                }
                self.current = None;
            }
            if self.next_part >= self.parts.len() {
                return Ok(None);
            }
            self.current = Some(self.parts[self.next_part].scan()?);
            self.next_part += 1;
        }
    }

    fn next_into(&mut self, buf: &mut Vec<ItemId>) -> Result<bool> {
        loop {
            if let Some(scan) = self.current.as_mut() {
                if scan.next_into(buf)? {
                    return Ok(true);
                }
                self.current = None;
            }
            if self.next_part >= self.parts.len() {
                return Ok(false);
            }
            self.current = Some(self.parts[self.next_part].scan()?);
            self.next_part += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_storage::PartitionWriter;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn chained_source_concatenates() {
        let dir = std::env::temp_dir().join(format!("gar-cli-chain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut parts: Vec<Box<dyn TransactionSource>> = Vec::new();
        for (i, txns) in [vec![ids(&[1])], vec![ids(&[2]), ids(&[3])]]
            .iter()
            .enumerate()
        {
            let mut w = PartitionWriter::create(dir.join(format!("part-{i:04}.txn"))).unwrap();
            for t in txns {
                w.write(t).unwrap();
            }
            parts.push(Box::new(w.finish().unwrap()));
        }
        let chain = ChainedSource::new(&parts);
        assert_eq!(chain.num_transactions(), 3);
        let mut scan = chain.scan().unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while scan.next_into(&mut buf).unwrap() {
            got.push(buf.clone());
        }
        assert_eq!(got, vec![ids(&[1]), ids(&[2]), ids(&[3])]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_partitions_requires_dataset_dir() {
        let dir = std::env::temp_dir().join(format!("gar-cli-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(open_partitions(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
