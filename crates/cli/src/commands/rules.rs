//! `gar-cli rules` — derive association rules from a saved mining output.

use crate::args::Args;
use gar_mining::persist::load_output;
use gar_mining::rules::{derive_rules, prune_uninteresting};
use gar_taxonomy::Taxonomy;
use gar_types::Result;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let output_path = args.require("output")?;
    let min_confidence: f64 = args.require_parsed("min-confidence")?;
    let top: usize = args.get_or("top", 50)?;

    let output = load_output(output_path)?;
    let taxonomy: Option<Taxonomy> = match args.get("taxonomy") {
        Some(p) => Some(gar_taxonomy::io::load(p)?),
        None => None,
    };

    let mut rules = derive_rules(&output, min_confidence, taxonomy.as_ref());
    let total = rules.len();
    if let Some(r) = args.get("interest") {
        let r: f64 = r
            .parse()
            .map_err(|_| gar_types::Error::InvalidConfig(format!("bad --interest '{r}'")))?;
        let tax = taxonomy.as_ref().ok_or_else(|| {
            gar_types::Error::InvalidConfig(
                "--interest needs --taxonomy (ancestor rules define expectations)".into(),
            )
        })?;
        rules = prune_uninteresting(&rules, &output, tax, r);
        println!(
            "{total} rules at confidence >= {:.0}%; {} remain after the R={r} interest filter",
            min_confidence * 100.0,
            rules.len()
        );
    } else {
        println!(
            "{total} rules at confidence >= {:.0}%",
            min_confidence * 100.0
        );
    }

    for rule in rules.iter().take(top) {
        println!("  {rule}");
    }
    if rules.len() > top {
        println!(
            "  ... ({} more; raise --top to see them)",
            rules.len() - top
        );
    }
    Ok(())
}
