//! `gar-cli rules` — derive association rules from a saved mining output,
//! optionally persisting them as a servable `GRUL` rule store.

use crate::args::Args;
use gar_mining::persist::load_output;
use gar_mining::rules::{derive_rules, prune_uninteresting};
use gar_serve::RuleStore;
use gar_taxonomy::{Taxonomy, TaxonomyBuilder};
use gar_types::Result;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let output_path = args.require("output")?;
    let min_confidence: f64 = args.require_parsed("min-confidence")?;
    let top: usize = args.get_or("top", 50)?;

    let output = load_output(output_path)?;
    let taxonomy: Option<Taxonomy> = match args.get("taxonomy") {
        Some(p) => Some(gar_taxonomy::io::load(p)?),
        None => None,
    };

    let mut rules = derive_rules(&output, min_confidence, taxonomy.as_ref());
    let total = rules.len();
    if let Some(r) = args.get("interest") {
        let r: f64 = r
            .parse()
            .map_err(|_| gar_types::Error::InvalidConfig(format!("bad --interest '{r}'")))?;
        let tax = taxonomy.as_ref().ok_or_else(|| {
            gar_types::Error::InvalidConfig(
                "--interest needs --taxonomy (ancestor rules define expectations)".into(),
            )
        })?;
        rules = prune_uninteresting(&rules, &output, tax, r);
        println!(
            "{total} rules at confidence >= {:.0}%; {} remain after the R={r} interest filter",
            min_confidence * 100.0,
            rules.len()
        );
    } else {
        println!(
            "{total} rules at confidence >= {:.0}%",
            min_confidence * 100.0
        );
    }

    for rule in rules.iter().take(top) {
        println!("  {rule}");
    }
    if rules.len() > top {
        println!(
            "  ... ({} more; raise --top to see them)",
            rules.len() - top
        );
    }

    if let Some(out_path) = args.get("out") {
        // The store embeds a hierarchy so the server can extend baskets.
        // Without --taxonomy, embed a flat one wide enough for every
        // item the rules mention (queries then match literally).
        let store_tax = match taxonomy {
            Some(t) => t,
            None => flat_taxonomy_over(&rules)?,
        };
        let store = RuleStore::new(rules, store_tax, output.num_transactions);
        store.save(out_path)?;
        println!(
            "wrote {out_path} ({} rules, canonical order)",
            store.rules.len()
        );
    }
    Ok(())
}

/// A hierarchy with no edges, covering every item the rules mention.
fn flat_taxonomy_over(rules: &[gar_mining::rules::Rule]) -> Result<Taxonomy> {
    let max_item = rules
        .iter()
        .flat_map(|r| {
            r.antecedent
                .items()
                .iter()
                .chain(r.consequent.items())
                .map(|&i| i.raw())
        })
        .max()
        .unwrap_or(0);
    TaxonomyBuilder::new(max_item + 1).build()
}
