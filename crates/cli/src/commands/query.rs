//! `gar-cli query` — send one basket to a running `gar-cli serve`
//! instance and print the recommended consequents.

use crate::args::Args;
use gar_cluster::RetryPolicy;
use gar_serve::Client;
use gar_types::{Error, ItemId, Result};
use std::time::Duration;

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<()> {
    let addr = args.require("addr")?;
    let deadline = Duration::from_millis(args.get_or("deadline-ms", 5000)?);
    let retry = RetryPolicy::default();

    if args.has_switch("shutdown") {
        let client = Client::connect(addr, Some(deadline), &retry)?;
        client.shutdown()?;
        println!("server at {addr} acknowledged shutdown");
        return Ok(());
    }

    if let Some(path) = args.get("reload") {
        let mut client = Client::connect(addr, Some(deadline), &retry)?;
        let epoch = client.reload(path)?;
        println!("server at {addr} reloaded {path} into epoch {epoch}");
        return Ok(());
    }

    let basket = parse_basket(args.require("basket")?)?;
    let top_k: u32 = args.get_or("top", 5)?;
    let mut client = Client::connect(addr, Some(deadline), &retry)?;
    let recs = client.query(&basket, top_k)?;
    if recs.is_empty() {
        println!("no recommendations");
        return Ok(());
    }
    for rec in recs {
        println!(
            "  {}  (score {:.4}, conf {:.1}%, sup {})",
            rec.consequent,
            rec.score,
            rec.confidence * 100.0,
            rec.support_count
        );
    }
    Ok(())
}

/// Parses `--basket "3,7,12"` into item ids.
fn parse_basket(spec: &str) -> Result<Vec<ItemId>> {
    let mut items = Vec::new();
    for tok in spec.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        let id: u32 = tok
            .parse()
            .map_err(|_| Error::InvalidConfig(format!("bad basket item '{tok}'")))?;
        items.push(ItemId(id));
    }
    if items.is_empty() {
        return Err(Error::InvalidConfig(
            "--basket must name at least one item id".into(),
        ));
    }
    Ok(items)
}
