//! A small, dependency-free argument parser.
//!
//! Grammar: the first free token is the subcommand; `--key value` pairs
//! become flags; bare `--key` tokens followed by another flag (or
//! nothing) become switches. Good enough for a reproduction CLI and
//! fully tested, instead of pulling an argument-parsing dependency
//! outside the sanctioned list.

use gar_types::{Error, Result};
use std::collections::HashMap;

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first free token), if any.
    pub command: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses tokens (without the program name).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Args> {
        let mut out = Args::default();
        let mut tokens = tokens.into_iter().peekable();
        while let Some(tok) = tokens.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(Error::InvalidConfig("stray '--'".into()));
                }
                // `--key=value` or `--key value` or a bare switch.
                if let Some((k, v)) = key.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if tokens.peek().is_some_and(|t| !t.starts_with("--")) {
                    out.flags
                        .insert(key.to_string(), tokens.next().expect("peeked"));
                } else {
                    out.switches.push(key.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| Error::InvalidConfig(format!("missing required flag --{key}")))
    }

    /// Parsed value of a flag, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                Error::InvalidConfig(format!("flag --{key} has unparsable value '{v}'"))
            }),
        }
    }

    /// Parsed value of a required flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let v = self.require(key)?;
        v.parse()
            .map_err(|_| Error::InvalidConfig(format!("flag --{key} has unparsable value '{v}'")))
    }

    /// True when the bare switch was given.
    #[allow(dead_code)] // exercised by tests; kept for future switches
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Extra positional arguments after the subcommand.
    #[allow(dead_code)] // exercised by tests; kept for future positional args
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse("mine --data /tmp/x --min-support 0.01 --verbose");
        assert_eq!(a.command.as_deref(), Some("mine"));
        assert_eq!(a.get("data"), Some("/tmp/x"));
        assert_eq!(a.get_or::<f64>("min-support", 0.0).unwrap(), 0.01);
        assert!(a.has_switch("verbose"));
        assert!(!a.has_switch("quiet"));
    }

    #[test]
    fn equals_form() {
        let a = parse("gen --scale=0.05 --seed=7");
        assert_eq!(a.get_or::<f64>("scale", 1.0).unwrap(), 0.05);
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn switch_before_flag() {
        let a = parse("mine --force --out x.gout");
        assert!(a.has_switch("force"));
        assert_eq!(a.get("out"), Some("x.gout"));
    }

    #[test]
    fn trailing_switch() {
        let a = parse("info --data d --json");
        assert!(a.has_switch("json"));
    }

    #[test]
    fn missing_required_flag_errors() {
        let a = parse("mine");
        assert!(a.require("data").is_err());
        assert!(a.require_parsed::<f64>("min-support").is_err());
    }

    #[test]
    fn unparsable_value_errors() {
        let a = parse("mine --min-support banana");
        assert!(a.get_or::<f64>("min-support", 0.1).is_err());
    }

    #[test]
    fn positional_arguments_collected() {
        let a = parse("rules out.gout extra");
        assert_eq!(a.command.as_deref(), Some("rules"));
        assert_eq!(
            a.positional(),
            &["out.gout".to_string(), "extra".to_string()]
        );
    }

    #[test]
    fn stray_double_dash_rejected() {
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }
}
