//! `gar-cli` — generate hierarchical retail datasets, mine them with the
//! paper's parallel algorithms, and derive rules, as separate steps with
//! on-disk artifacts between them.
//!
//! ```text
//! gar-cli gen   --preset R30F5 --scale 0.01 --partitions 8 --out data/
//! gar-cli info  --data data/
//! gar-cli mine  --data data/ --algorithm H-HPGM-FGD --min-support 0.005 \
//!               --out large.gout
//! gar-cli rules --output large.gout --taxonomy data/taxonomy.gtax \
//!               --min-confidence 0.6 --top 20
//! ```

mod args;
mod commands;

use args::Args;
use gar_types::{Error, Result};

/// Exit-code mapping: 2 = bad invocation or configuration, 3 = storage
/// (I/O or corrupt artifact), 4 = cluster-runtime failure (a node died,
/// hung past its deadline, or broke protocol). Scripts can distinguish
/// "fix your flags" from "rerun with --resume".
fn exit_code(e: &Error) -> i32 {
    match e {
        Error::InvalidConfig(_) | Error::InvalidTaxonomy(_) => 2,
        Error::Io { .. } | Error::Corrupt(_) => 3,
        Error::NodeFailure { .. }
        | Error::Protocol(_)
        | Error::Poisoned { .. }
        | Error::Timeout { .. } => 4,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print_usage();
        return;
    }
    match run(argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(exit_code(&e));
        }
    }
}

fn run(argv: Vec<String>) -> Result<()> {
    let args = Args::parse(argv)?;
    match args.command.as_deref() {
        Some("gen") => commands::gen::run(&args),
        Some("info") => commands::info::run(&args),
        Some("mine") => commands::mine::run(&args),
        Some("rules") => commands::rules::run(&args),
        Some("serve") => commands::serve::run(&args),
        Some("query") => commands::query::run(&args),
        Some(other) => {
            print_usage();
            Err(gar_types::Error::InvalidConfig(format!(
                "unknown subcommand '{other}'"
            )))
        }
        None => {
            print_usage();
            Ok(())
        }
    }
}

fn print_usage() {
    println!(
        "gar-cli — generalized association rule mining (SIGMOD '98 reproduction)

USAGE:
  gar-cli gen   --out DIR [--preset R30F5|R30F3|R30F10] [--scale F]
                [--seed N] [--partitions N]
  gar-cli info  --data DIR
  gar-cli mine  --data DIR --min-support F [--algorithm NAME|--algo NAME]
                [--max-pass K] [--memory-mb M] [--out FILE.gout]
                [--checkpoint-dir DIR] [--resume] [--faults SPEC]
                [--deadline-ms MS] [--max-node-failures N]
                [--metrics-out FILE.json] [--trace-out FILE.json]
  gar-cli rules --output FILE.gout --min-confidence F
                [--taxonomy FILE.gtax] [--interest R] [--top N]
                [--out FILE.grul]
  gar-cli serve --rules FILE.grul [--port N] [--shards N]
                [--deadline-ms MS] [--queue-depth N] [--cache N]
                [--watch-store] [--faults SPEC]
                [--metrics-out FILE.json] [--trace-out FILE.json]
  gar-cli query --addr HOST:PORT
                (--basket \"1,2,3\" | --reload FILE.grul | --shutdown)
                [--top K] [--deadline-ms MS]

ALGORITHMS:
  Cumulate (sequential), NPGM, HPGM, H-HPGM, H-HPGM-TGD, H-HPGM-PGD,
  H-HPGM-FGD (default), FP-Growth (pattern growth, projection-sharded)

FAULT TOLERANCE (parallel algorithms):
  --checkpoint-dir DIR   persist L_k after every pass (crash-safe writes)
  --resume               restart from the newest intact checkpoint in DIR
  --faults SPEC          seeded fault injection, e.g.
                         'seed=42,p-drop=0.01,delay-ms=2,panic@n1p2'
  --deadline-ms MS       per-wait deadline; a hung node becomes a Timeout
  --max-node-failures N  re-run over survivors after up to N node deaths

OBSERVABILITY (parallel algorithms and serve):
  --metrics-out FILE     write per-pass counters/histograms as JSON
  --trace-out FILE       write chrome://tracing spans (one lane per node)

SERVING:
  rules --out FILE       persist the derived rules (canonical order,
                         embedded taxonomy) as a servable .grul store
  serve                  answer basket queries over TCP; port 0 picks an
                         ephemeral port (printed on the first line)
  serve --watch-store    hot-swap the rule file into a new epoch when it
                         changes on disk (corrupt swaps are rejected and
                         the old epoch keeps answering)
  serve --faults SPEC    seeded serve-side chaos, e.g.
                         'conn-reset@c0,shard-panic@s1q3,stale-swap@r1'
  query                  send one basket; --reload hot-swaps a new rule
                         file; --shutdown stops the server

EXIT CODES:
  0 success · 2 invalid flags/config · 3 I/O or corrupt artifact ·
  4 cluster failure (node death, timeout, protocol)"
    );
}
