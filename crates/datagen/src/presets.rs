//! The Table-5 dataset presets.
//!
//! | Parameter | R30F5 | R30F3 | R30F10 |
//! |---|---|---|---|
//! | Transactions | 3 200 000 | 3 200 000 | 3 200 000 |
//! | Avg transaction size | 10 | 10 | 10 |
//! | Avg maximal potentially large itemset | 5 | 5 | 5 |
//! | Maximal potentially large itemsets | 10 000 | 10 000 | 10 000 |
//! | Items | 30 000 | 30 000 | 30 000 |
//! | Roots | 30 | 30 | 30 |
//! | Levels (emergent) | 5-6 | 6-7 | 3-4 |
//! | Fanout | 5 | 3 | 10 |
//!
//! The benches run these at a `scale` factor (see
//! [`DatasetSpec::scaled`]); EXPERIMENTS.md records which scale each figure
//! used.

use crate::generator::DatasetSpec;

fn base(name: &str, fanout: f64, seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: name.to_string(),
        num_transactions: 3_200_000,
        avg_transaction_size: 10.0,
        avg_pattern_size: 5.0,
        num_patterns: 10_000,
        num_items: 30_000,
        num_roots: 30,
        fanout,
        seed,
    }
}

/// `R30F5`: 30 roots, fanout 5 (5-6 levels at full size).
pub fn r30f5(seed: u64) -> DatasetSpec {
    base("R30F5", 5.0, seed)
}

/// `R30F3`: 30 roots, fanout 3 (6-7 levels — deepest hierarchy).
pub fn r30f3(seed: u64) -> DatasetSpec {
    base("R30F3", 3.0, seed)
}

/// `R30F10`: 30 roots, fanout 10 (3-4 levels — shallowest hierarchy).
pub fn r30f10(seed: u64) -> DatasetSpec {
    base("R30F10", 10.0, seed)
}

/// All three Table-5 datasets.
pub fn all(seed: u64) -> Vec<DatasetSpec> {
    vec![r30f5(seed), r30f3(seed), r30f10(seed)]
}

/// Looks a preset up by name (case-insensitive).
pub fn by_name(name: &str, seed: u64) -> Option<DatasetSpec> {
    match name.to_ascii_uppercase().as_str() {
        "R30F5" => Some(r30f5(seed)),
        "R30F3" => Some(r30f3(seed)),
        "R30F10" => Some(r30f10(seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_5() {
        for spec in all(0) {
            assert_eq!(spec.num_transactions, 3_200_000);
            assert_eq!(spec.avg_transaction_size, 10.0);
            assert_eq!(spec.avg_pattern_size, 5.0);
            assert_eq!(spec.num_patterns, 10_000);
            assert_eq!(spec.num_items, 30_000);
            assert_eq!(spec.num_roots, 30);
            assert!(spec.validate().is_ok());
        }
        assert_eq!(r30f5(0).fanout, 5.0);
        assert_eq!(r30f3(0).fanout, 3.0);
        assert_eq!(r30f10(0).fanout, 10.0);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("r30f5", 0).is_some());
        assert!(by_name("R30F10", 0).is_some());
        assert!(by_name("R99F1", 0).is_none());
    }

    #[test]
    fn emergent_levels_match_table_5() {
        // Levels in Table 5 are 1-based counts of hierarchy levels; our
        // max_depth is edges below the root, so levels = max_depth + 1.
        // Scaled-down forests are shallower; check ordering + plausible
        // ranges at a moderate scale.
        let depth = |spec: &DatasetSpec| spec.build_taxonomy().max_depth() + 1;
        let f3 = depth(&r30f3(1));
        let f5 = depth(&r30f5(1));
        let f10 = depth(&r30f10(1));
        assert!(f10 < f5 && f5 < f3, "levels: f10={f10} f5={f5} f3={f3}");
        assert!((5..=8).contains(&f5), "R30F5 levels {f5}");
        assert!((6..=10).contains(&f3), "R30F3 levels {f3}");
        assert!((3..=5).contains(&f10), "R30F10 levels {f10}");
    }
}
