//! The pool of maximal potentially large itemsets ("patterns").

use crate::dist::{corruption_level, exp1, poisson, WeightedIndex};
use gar_taxonomy::Taxonomy;
use gar_types::{FxHashMap, FxHashSet, ItemId};
use rand::Rng;

/// One maximal potentially large itemset: the seed of the associations the
/// generator plants into transactions.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Member items. May include interior taxonomy nodes — those are
    /// specialized to random leaf descendants at emission time.
    pub items: Vec<ItemId>,
    /// Normalized sampling weight (exponentially distributed ⇒ heavy skew).
    pub weight: f64,
    /// Corruption level: higher means members are dropped more often.
    pub corruption: f64,
}

/// The full pattern pool plus its weighted sampler.
#[derive(Debug, Clone)]
pub struct PatternPool {
    patterns: Vec<Pattern>,
    sampler: WeightedIndex,
}

/// Probability that a fresh pattern item is lifted to an ancestor after the
/// initial leaf pick. This stands in for [SA95]'s depth-ratio parameter
/// (default depth-ratio 1 ⇒ interior nodes are reachable but leaf-biased).
const LIFT_PROB: f64 = 0.25;

/// Mean fraction of a pattern inherited from its predecessor ([AS94]'s
/// correlation level, 0.5).
const CORRELATION: f64 = 0.5;

/// Probability that a fresh pattern item comes from the *same tree* as the
/// pattern's first item. [SA95] chooses the items of a potentially large
/// itemset close to each other in the taxonomy; this locality is what the
/// H-HPGM family exploits — transactions touch few roots, so root-itemset
/// partitioning ships data to few nodes.
const SAME_TREE_PROB: f64 = 0.75;

impl PatternPool {
    /// Draws `num_patterns` patterns of mean size `avg_size` over the
    /// taxonomy's items.
    pub fn generate(
        tax: &Taxonomy,
        num_patterns: usize,
        avg_size: f64,
        rng: &mut impl Rng,
    ) -> PatternPool {
        assert!(num_patterns > 0, "need at least one pattern");
        let leaves = tax.leaves();
        assert!(!leaves.is_empty());
        // Leaves grouped by tree, for the same-tree locality bias.
        let mut leaves_by_root: FxHashMap<ItemId, Vec<ItemId>> = FxHashMap::default();
        for &leaf in leaves {
            leaves_by_root
                .entry(tax.root_of(leaf))
                .or_default()
                .push(leaf);
        }

        let mut patterns: Vec<Pattern> = Vec::with_capacity(num_patterns);
        let mut weights = Vec::with_capacity(num_patterns);
        let mut prev_items: Vec<ItemId> = Vec::new();

        for _ in 0..num_patterns {
            let size = poisson(rng, avg_size).max(1) as usize;
            let mut items: FxHashSet<ItemId> = FxHashSet::default();

            // Correlated part: an exponentially distributed fraction of the
            // previous pattern is carried over ([AS94] §4.1).
            if !prev_items.is_empty() {
                let frac = (exp1(rng) * CORRELATION).min(1.0);
                let take = ((size as f64) * frac).round() as usize;
                for _ in 0..take.min(prev_items.len()) {
                    let pick = prev_items[rng.gen_range(0..prev_items.len())];
                    items.insert(pick);
                }
            }

            // Fresh part: taxonomy-walk picks. The first item is a uniform
            // leaf; later items stay in its tree with high probability
            // ([SA95]'s "close in the taxonomy"). Each pick is lifted to
            // an ancestor with geometric probability, so patterns mix
            // hierarchy levels.
            let mut home_root: Option<ItemId> = items.iter().next().map(|&it| tax.root_of(it));
            let mut guard = 0;
            while items.len() < size && guard < size * 64 {
                guard += 1;
                let leaf = match home_root {
                    Some(root) if rng.gen::<f64>() < SAME_TREE_PROB => {
                        let pool = &leaves_by_root[&root];
                        pool[rng.gen_range(0..pool.len())]
                    }
                    _ => leaves[rng.gen_range(0..leaves.len())],
                };
                if home_root.is_none() {
                    home_root = Some(tax.root_of(leaf));
                }
                let mut pick = leaf;
                while rng.gen::<f64>() < LIFT_PROB {
                    match tax.parent(pick) {
                        Some(p) => pick = p,
                        None => break,
                    }
                }
                // An itemset never contains both an item and its ancestor —
                // such a pattern would plant trivially redundant rules.
                if items.iter().any(|&x| tax.related(x, pick)) {
                    continue;
                }
                items.insert(pick);
            }

            let mut items: Vec<ItemId> = items.into_iter().collect();
            items.sort_unstable();
            let weight = exp1(rng);
            weights.push(weight);
            prev_items = items.clone();
            patterns.push(Pattern {
                items,
                weight,
                corruption: corruption_level(rng),
            });
        }

        // Normalize weights so Pattern::weight is a probability.
        let total: f64 = weights.iter().sum();
        for (p, w) in patterns.iter_mut().zip(&weights) {
            p.weight = w / total;
        }
        let sampler = WeightedIndex::new(&weights);
        PatternPool { patterns, sampler }
    }

    /// All patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Draws a pattern index according to the weights.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.sampler.sample(rng)
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the pool is empty (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_tax() -> Taxonomy {
        synthesize(&SynthTaxonomyConfig {
            num_items: 300,
            num_roots: 5,
            fanout: 4.0,
            seed: 11,
        })
    }

    #[test]
    fn pool_has_requested_count_and_normalized_weights() {
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(1);
        let pool = PatternPool::generate(&tax, 200, 4.0, &mut rng);
        assert_eq!(pool.len(), 200);
        let total: f64 = pool.patterns().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn patterns_never_mix_ancestor_and_descendant() {
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(2);
        let pool = PatternPool::generate(&tax, 300, 5.0, &mut rng);
        for p in pool.patterns() {
            for (i, &a) in p.items.iter().enumerate() {
                for &b in &p.items[i + 1..] {
                    assert!(!tax.related(a, b), "pattern mixes {a:?} and {b:?}");
                }
            }
        }
    }

    #[test]
    fn patterns_are_sorted_and_nonempty() {
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(3);
        let pool = PatternPool::generate(&tax, 100, 3.0, &mut rng);
        for p in pool.patterns() {
            assert!(!p.items.is_empty());
            assert!(p.items.windows(2).all(|w| w[0] < w[1]));
            assert!((0.0..=1.0).contains(&p.corruption));
        }
    }

    #[test]
    fn some_patterns_contain_interior_items() {
        // The lift step must actually produce interior nodes; otherwise no
        // generalized rules would ever be planted above leaf level.
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(4);
        let pool = PatternPool::generate(&tax, 300, 5.0, &mut rng);
        let interior_count = pool
            .patterns()
            .iter()
            .flat_map(|p| &p.items)
            .filter(|&&i| !tax.is_leaf(i))
            .count();
        assert!(interior_count > 0, "no interior items in any pattern");
    }

    #[test]
    fn weights_are_skewed() {
        // Exponential weights: the heaviest decile should dominate.
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(5);
        let pool = PatternPool::generate(&tax, 500, 4.0, &mut rng);
        let mut ws: Vec<f64> = pool.patterns().iter().map(|p| p.weight).collect();
        ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top_decile: f64 = ws[..50].iter().sum();
        assert!(top_decile > 0.2, "top decile carries {top_decile}");
    }

    #[test]
    fn patterns_are_taxonomy_local() {
        // [SA95] locality: a pattern's items cluster in one tree. With 5
        // trees and mean size 5, uniform picks would average ~3.4 distinct
        // roots per pattern; the same-tree bias must pull it well below.
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(8);
        let pool = PatternPool::generate(&tax, 400, 5.0, &mut rng);
        let mut total_roots = 0usize;
        let mut n = 0usize;
        for p in pool.patterns().iter().filter(|p| p.items.len() >= 3) {
            let mut roots: Vec<_> = p.items.iter().map(|&i| tax.root_of(i)).collect();
            roots.sort_unstable();
            roots.dedup();
            total_roots += roots.len();
            n += 1;
        }
        let mean = total_roots as f64 / n as f64;
        assert!(mean < 2.6, "patterns span {mean:.2} roots on average");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let tax = small_tax();
        let mut rng = StdRng::seed_from_u64(6);
        let pool = PatternPool::generate(&tax, 100, 4.0, &mut rng);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(pool.sample(&mut r1), pool.sample(&mut r2));
        }
    }
}
