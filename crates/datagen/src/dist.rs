//! The small set of distributions the Quest generator needs.
//!
//! Implemented locally (Knuth Poisson, inverse-CDF exponential, Box-Muller
//! normal) to stay within the sanctioned dependency list — `rand` ships the
//! uniform primitives, `rand_distr` is not on the list.

use rand::Rng;

/// Poisson-distributed `u32` with mean `lambda` (Knuth's multiplication
/// method; `lambda` here is a transaction/pattern size, i.e. small).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u32 {
    debug_assert!(lambda > 0.0);
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if f64::from(k) > lambda * 16.0 + 16.0 {
            return k;
        }
    }
}

/// Exponentially distributed `f64` with unit mean.
pub fn exp1(rng: &mut impl Rng) -> f64 {
    // Inverse CDF; guard the log against an exact 0 draw.
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln()
}

/// Normal sample via Box-Muller.
pub fn normal(rng: &mut impl Rng, mean: f64, variance: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + z * variance.sqrt()
}

/// The corruption level of [AS94]: Normal(0.5, 0.1) clipped to `[0, 1]`.
pub fn corruption_level(rng: &mut impl Rng) -> f64 {
    normal(rng, 0.5, 0.1).clamp(0.0, 1.0)
}

/// Weighted index sampling by cumulative sums + binary search. The pattern
/// pool is sampled once per transaction slot, so `O(log n)` per draw is
/// fine and avoids the complexity of an alias table.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from non-negative weights (need not be
    /// normalized).
    ///
    /// # Panics
    /// Panics when `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "no weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0);
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        WeightedIndex { cumulative }
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        // partition_point: first index whose cumulative sum exceeds x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no weights (unreachable by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(poisson(&mut rng, 10.0))).sum();
        let mean = sum as f64 / n as f64;
        assert!((9.7..=10.3).contains(&mean), "mean {mean}");
    }

    #[test]
    fn exp1_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exp1(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((0.97..=1.03).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 0.5, 0.1)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((0.48..=0.52).contains(&mean), "mean {mean}");
        assert!((0.09..=0.11).contains(&var), "var {var}");
    }

    #[test]
    fn corruption_is_clipped() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let c = corruption_level(&mut rng);
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.7..=3.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn weighted_index_rejects_empty() {
        let _ = WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }
}
