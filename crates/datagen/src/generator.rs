//! Dataset specification and the transaction stream.

use crate::dist::poisson;
use crate::pattern::PatternPool;
use gar_taxonomy::synth::{synthesize, SynthTaxonomyConfig};
use gar_taxonomy::Taxonomy;
use gar_types::{Error, ItemId, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything Table 5 parameterizes, plus a seed.
///
/// Field names follow the table rows; see [`crate::presets`] for the three
/// named datasets.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (e.g. `R30F5`), used in reports.
    pub name: String,
    /// `|D|` — number of transactions (paper: 3 200 000).
    pub num_transactions: usize,
    /// `|T|` — average transaction size (paper: 10).
    pub avg_transaction_size: f64,
    /// `|I|` — average size of the maximal potentially large itemsets
    /// (paper: 5).
    pub avg_pattern_size: f64,
    /// `|L|` — number of maximal potentially large itemsets (paper: 10 000).
    pub num_patterns: usize,
    /// `N` — number of items (paper: 30 000).
    pub num_items: u32,
    /// `R` — number of taxonomy roots (paper: 30).
    pub num_roots: u32,
    /// `F` — mean fanout (paper: 5 / 3 / 10).
    pub fanout: f64,
    /// Seed for taxonomy, pattern pool, and transaction stream.
    pub seed: u64,
}

impl DatasetSpec {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.num_roots == 0 || self.num_roots > self.num_items {
            return Err(Error::InvalidConfig(format!(
                "num_roots {} must be in 1..=num_items {}",
                self.num_roots, self.num_items
            )));
        }
        if self.num_patterns == 0 {
            return Err(Error::InvalidConfig("num_patterns must be > 0".into()));
        }
        if self.avg_transaction_size < 1.0 || self.avg_pattern_size < 1.0 {
            return Err(Error::InvalidConfig("average sizes must be >= 1".into()));
        }
        if self.fanout <= 0.0 {
            return Err(Error::InvalidConfig("fanout must be positive".into()));
        }
        Ok(())
    }

    /// Grows this spec's classification hierarchy (deterministic in the
    /// seed).
    pub fn build_taxonomy(&self) -> Taxonomy {
        synthesize(&SynthTaxonomyConfig {
            num_items: self.num_items,
            num_roots: self.num_roots,
            fanout: self.fanout,
            seed: self.seed,
        })
    }

    /// A proportionally shrunk copy: transactions and patterns scale by
    /// `factor`, **items by `√factor`** (with sane floors); roots and
    /// fanout stay fixed so the hierarchy *shape* — what the algorithms
    /// partition by — is preserved.
    ///
    /// Scaling items slower than transactions keeps the paper's
    /// support regime: per-leaf frequency scales like
    /// `txns / items ∝ √factor`, so at the experiment supports most
    /// *leaves* stay small and transactions reduce onto interior items —
    /// the situation H-HPGM's reduced-transaction shipping exploits.
    /// Meanwhile the pass-2 candidate count (`∝ items²` at worst) still
    /// shrinks linearly in `factor`, keeping memory pressure reachable.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0, 1]");
        let scale_usize = |v: usize, floor: usize| ((v as f64 * factor) as usize).max(floor);
        DatasetSpec {
            name: format!("{}@{:.4}", self.name, factor),
            num_transactions: scale_usize(self.num_transactions, 1_000),
            num_items: ((f64::from(self.num_items) * factor.sqrt()) as u32)
                .max(10 * self.num_roots),
            num_patterns: scale_usize(self.num_patterns, 50),
            ..self.clone()
        }
    }
}

/// Precomputed leaf-descendant table: `data[off[i]..off[i+1]]` are the
/// leaves under item `i` (an item that *is* a leaf lists itself). Used to
/// specialize interior pattern items into concrete leaf purchases.
struct LeafSampler {
    data: Vec<ItemId>,
    off: Vec<u32>,
}

impl LeafSampler {
    fn build(tax: &Taxonomy) -> LeafSampler {
        let n = tax.num_items() as usize;
        let mut lists: Vec<Vec<ItemId>> = vec![Vec::new(); n];
        for &leaf in tax.leaves() {
            lists[leaf.index()].push(leaf);
            for &a in tax.ancestors(leaf) {
                lists[a.index()].push(leaf);
            }
        }
        let mut data = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        let mut off = Vec::with_capacity(n + 1);
        off.push(0u32);
        for l in lists {
            data.extend_from_slice(&l);
            off.push(data.len() as u32);
        }
        LeafSampler { data, off }
    }

    fn sample(&self, item: ItemId, rng: &mut impl Rng) -> ItemId {
        let lo = self.off[item.index()] as usize;
        let hi = self.off[item.index() + 1] as usize;
        debug_assert!(hi > lo, "item {item:?} has no leaf descendants");
        self.data[lo + rng.gen_range(0..hi - lo)]
    }
}

/// Streaming transaction generator: an `Iterator` over `Vec<ItemId>` whose
/// items are always leaves, sorted and de-duplicated.
pub struct TransactionGenerator {
    tax: Taxonomy,
    pool: PatternPool,
    leaf_sampler: LeafSampler,
    rng: StdRng,
    avg_transaction_size: f64,
    remaining: usize,
    /// A corrupted pattern instance that overflowed the previous
    /// transaction and was deferred to this one ([AS94] §4.1).
    deferred: Option<Vec<ItemId>>,
}

impl TransactionGenerator {
    /// Builds the generator for a spec (validates first).
    pub fn new(spec: &DatasetSpec) -> Result<TransactionGenerator> {
        spec.validate()?;
        let tax = spec.build_taxonomy();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7472_616e_7361_6374); // "transact"
        let pool = PatternPool::generate(&tax, spec.num_patterns, spec.avg_pattern_size, &mut rng);
        let leaf_sampler = LeafSampler::build(&tax);
        Ok(TransactionGenerator {
            tax,
            pool,
            leaf_sampler,
            rng,
            avg_transaction_size: spec.avg_transaction_size,
            remaining: spec.num_transactions,
            deferred: None,
        })
    }

    /// The taxonomy the generator drew (shared by the mining side).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.tax
    }

    /// The pattern pool (exposed for tests and ground-truth checks).
    pub fn pattern_pool(&self) -> &PatternPool {
        &self.pool
    }

    /// Consumes the generator, returning the taxonomy (avoids a clone when
    /// the caller needs to keep it after draining the stream).
    pub fn into_taxonomy(self) -> Taxonomy {
        self.tax
    }

    /// Instantiates one pattern: corruption-drops members, then specializes
    /// interior items to random leaf descendants.
    fn instantiate_pattern(&mut self, idx: usize) -> Vec<ItemId> {
        let (items, corruption) = {
            let p = &self.pool.patterns()[idx];
            (p.items.clone(), p.corruption)
        };
        let mut kept = items;
        // [AS94]: drop items as long as a uniform draw stays below the
        // corruption level.
        while kept.len() > 1 && self.rng.gen::<f64>() < corruption {
            let at = self.rng.gen_range(0..kept.len());
            kept.swap_remove(at);
        }
        for item in kept.iter_mut() {
            if !self.tax.is_leaf(*item) {
                *item = self.leaf_sampler.sample(*item, &mut self.rng);
            }
        }
        kept
    }
}

impl Iterator for TransactionGenerator {
    type Item = Vec<ItemId>;

    fn next(&mut self) -> Option<Vec<ItemId>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;

        let size = poisson(&mut self.rng, self.avg_transaction_size).max(1) as usize;
        let mut txn: Vec<ItemId> = Vec::with_capacity(size + 4);

        if let Some(d) = self.deferred.take() {
            txn.extend_from_slice(&d);
        }

        let mut stall = 0;
        while txn.len() < size && stall < 64 {
            let idx = self.pool.sample(&mut self.rng);
            let inst = self.instantiate_pattern(idx);
            if inst.is_empty() {
                stall += 1;
                continue;
            }
            if txn.len() + inst.len() <= size || txn.is_empty() {
                txn.extend_from_slice(&inst);
            } else if self.rng.gen::<bool>() {
                // Half the time the overflowing itemset goes in anyway.
                txn.extend_from_slice(&inst);
                break;
            } else {
                // Otherwise it is deferred to the next transaction.
                self.deferred = Some(inst);
                break;
            }
        }

        txn.sort_unstable();
        txn.dedup();
        Some(txn)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "tiny".into(),
            num_transactions: 2_000,
            avg_transaction_size: 10.0,
            avg_pattern_size: 4.0,
            num_patterns: 100,
            num_items: 400,
            num_roots: 8,
            fanout: 4.0,
            seed: 99,
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut s = tiny_spec();
        s.num_roots = 0;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.num_roots = s.num_items + 1;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.num_patterns = 0;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.avg_transaction_size = 0.5;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.fanout = 0.0;
        assert!(s.validate().is_err());
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn emits_requested_number_of_transactions() {
        let g = TransactionGenerator::new(&tiny_spec()).unwrap();
        assert_eq!(g.count(), 2_000);
    }

    #[test]
    fn transactions_are_sorted_leaf_only() {
        let mut g = TransactionGenerator::new(&tiny_spec()).unwrap();
        let tax = g.taxonomy().clone();
        for txn in g.by_ref().take(500) {
            assert!(!txn.is_empty());
            assert!(txn.windows(2).all(|w| w[0] < w[1]), "not sorted: {txn:?}");
            for &it in &txn {
                assert!(tax.is_leaf(it), "interior item {it:?} leaked");
            }
        }
    }

    #[test]
    fn average_size_is_near_target() {
        let g = TransactionGenerator::new(&tiny_spec()).unwrap();
        let sizes: Vec<usize> = g.map(|t| t.len()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // Dedup and deferral shave a bit off the Poisson mean of 10.
        assert!((6.0..=12.0).contains(&mean), "mean size {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = TransactionGenerator::new(&tiny_spec())
            .unwrap()
            .take(50)
            .collect();
        let b: Vec<_> = TransactionGenerator::new(&tiny_spec())
            .unwrap()
            .take(50)
            .collect();
        assert_eq!(a, b);
        let mut spec2 = tiny_spec();
        spec2.seed = 100;
        let c: Vec<_> = TransactionGenerator::new(&spec2)
            .unwrap()
            .take(50)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn item_frequencies_are_skewed() {
        // Exponential pattern weights must induce visibly skewed item
        // frequencies — that skew is the premise of the paper's §3.4.
        let g = TransactionGenerator::new(&tiny_spec()).unwrap();
        let n_items = g.taxonomy().num_items() as usize;
        let mut freq = vec![0usize; n_items];
        for t in g {
            for it in t {
                freq[it.index()] += 1;
            }
        }
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = freq.iter().sum();
        let top_5pct: usize = freq[..n_items / 20].iter().sum();
        assert!(
            top_5pct as f64 > total as f64 * 0.3,
            "top 5% of items carry only {top_5pct}/{total}"
        );
    }

    #[test]
    fn scaled_spec_shrinks_proportionally() {
        let full = DatasetSpec {
            name: "R30F5".into(),
            num_transactions: 3_200_000,
            avg_transaction_size: 10.0,
            avg_pattern_size: 5.0,
            num_patterns: 10_000,
            num_items: 30_000,
            num_roots: 30,
            fanout: 5.0,
            seed: 0,
        };
        let s = full.scaled(0.05);
        assert_eq!(s.num_transactions, 160_000);
        // Items scale by sqrt: 30000 * sqrt(0.05) ≈ 6708.
        assert_eq!(s.num_items, 6_708);
        assert_eq!(s.num_patterns, 500);
        assert_eq!(s.num_roots, 30);
        assert!(s.validate().is_ok());
        // Floors kick in for extreme factors.
        let t = full.scaled(0.000_1);
        assert!(t.num_transactions >= 1_000);
        assert!(t.num_items >= 300);
        assert!(t.num_patterns >= 50);
    }

    #[test]
    fn size_hint_tracks_remaining() {
        let mut g = TransactionGenerator::new(&tiny_spec()).unwrap();
        assert_eq!(g.size_hint(), (2_000, Some(2_000)));
        g.next();
        assert_eq!(g.size_hint(), (1_999, Some(1_999)));
    }
}
