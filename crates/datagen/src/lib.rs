//! Synthetic retail-transaction generator with classification hierarchy.
//!
//! Reimplementation of the generator the paper uses ("The generation
//! procedure is based on the method described in [SA95]"), which in turn
//! extends the IBM Quest generator of Agrawal & Srikant (VLDB '94) with a
//! taxonomy:
//!
//! 1. A forest of `R` trees with mean fanout `F` is grown over `N` items
//!    ([`gar_taxonomy::synth`]).
//! 2. A pool of *maximal potentially large itemsets* ("patterns") is drawn.
//!    Pattern sizes are Poisson with mean `|I|`; a fraction of each
//!    pattern's items is inherited from the previous pattern (correlation);
//!    fresh items are picked by a taxonomy walk, so patterns mix levels —
//!    associations planted at interior nodes are exactly what generalized
//!    rules recover. Each pattern carries an Exp(1) weight (normalized) and
//!    a clipped-Normal(0.5, 0.1) corruption level.
//! 3. Transactions draw Poisson(`|T|`)-many slots and fill them from
//!    weight-sampled patterns; corruption drops items stochastically;
//!    **interior items are replaced by a uniformly random leaf descendant**
//!    before emission, so raw transactions contain only leaves while their
//!    generalizations remain frequent.
//!
//! The exponential pattern weights are the source of the *data skew* the
//! paper's load-balancing algorithms (TGD/PGD/FGD) are designed to absorb.
//!
//! [`presets`] carries the Table-5 parameterizations (`R30F5`, `R30F3`,
//! `R30F10`) plus a `scale` knob, since the paper's 3.2 M-transaction,
//! 30 000-item datasets are shrunk proportionally for laptop-scale runs.

pub mod dist;
mod generator;
mod pattern;
pub mod presets;

pub use generator::{DatasetSpec, TransactionGenerator};
pub use pattern::{Pattern, PatternPool};
