//! Behavior ported from the original `xtask lint` text pass, plus the
//! deliberate behavior *changes*: the rules now run on sanitized code
//! lines, so trigger patterns inside string literals and comments —
//! which the old substring scan flagged — are invisible.

use gar_analyze::{analyze_source, RuleSet};

/// (line, rule) pairs from the legacy rule set, as `xtask lint` runs it.
fn legacy(rel: &str, src: &str) -> Vec<(usize, &'static str)> {
    analyze_source(rel, src, RuleSet::Legacy)
        .iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn wait_inside_while_is_clean() {
    let src = "pub fn block(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {\n    \
               let mut g = m.lock().unwrap();\n    \
               while !*g {\n        \
               g = cv.wait(g).unwrap();\n    \
               }\n\
               }\n";
    assert_eq!(legacy("crates/mining/src/sync.rs", src), vec![]);
}

#[test]
fn wait_outside_loop_is_flagged() {
    let src = "pub fn block(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {\n    \
               let g = m.lock().unwrap();\n    \
               let _g = cv.wait(g).unwrap();\n\
               }\n";
    assert_eq!(
        legacy("crates/mining/src/sync.rs", src),
        vec![(3, "wait-loop")]
    );
}

#[test]
fn wait_in_comment_or_string_is_clean() {
    // The old text lint flagged both of these lines; the lexer-backed
    // pass must not.
    let src = "pub fn describe() -> &'static str {\n    \
               // callers spin on cv.wait(g) here\n    \
               \"docs mention cv.wait(g) too\"\n\
               }\n";
    assert_eq!(legacy("crates/mining/src/sync.rs", src), vec![]);
}

#[test]
fn cluster_unwrap_only_fires_in_cluster_non_test_code() {
    let src = "pub fn f(r: Result<u32, ()>) -> u32 {\n    r.unwrap()\n}\n";
    assert_eq!(
        legacy("crates/cluster/src/x.rs", src),
        vec![(2, "cluster-unwrap")]
    );
    // Same code outside crates/cluster: clean.
    assert_eq!(legacy("crates/mining/src/x.rs", src), vec![]);
    // Same code inside a #[cfg(test)] region: clean.
    let test_src = "#[cfg(test)]\nmod tests {\n    pub fn f(r: Result<u32, ()>) -> u32 {\n        r.unwrap()\n    }\n}\n";
    assert_eq!(legacy("crates/cluster/src/x.rs", test_src), vec![]);
}

#[test]
fn ctx_recv_and_timeout_variants_are_deadline_aware() {
    // NodeCtx::recv is the deadline-aware wrapper by convention, and the
    // `_timeout` / `_deadline` variants carry their own deadline.
    let src = "pub fn pump(ctx: &NodeCtx, rx: &Rx) {\n    \
               let _a = ctx.recv();\n    \
               let _b = self.ctx.recv();\n    \
               let _c = rx.recv_timeout(d);\n    \
               let _d = rx.recv();\n\
               }\n";
    assert_eq!(
        legacy("crates/cluster/src/pump.rs", src),
        vec![(5, "no-deadline")]
    );
}

#[test]
fn relaxed_with_nearby_justification_is_clean() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               // relaxed: advisory counter, read only for telemetry\n\
               pub fn bump(c: &AtomicU64) {\n    \
               c.fetch_add(1, Ordering::Relaxed);\n\
               }\n";
    assert_eq!(legacy("crates/mining/src/counters.rs", src), vec![]);
}

#[test]
fn instant_is_allowed_in_obs() {
    let src = "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(legacy("crates/obs/src/clock.rs", src), vec![]);
    assert_eq!(
        legacy("crates/mining/src/clock.rs", src),
        vec![(2, "no-instant")]
    );
}

#[test]
fn sockets_are_allowed_in_serve_only() {
    let src = "pub fn open() {\n    let _ = std::net::TcpListener::bind(\"x\");\n}\n";
    assert_eq!(legacy("crates/serve/src/server.rs", src), vec![]);
    assert_eq!(
        legacy("crates/cluster/src/x.rs", src),
        vec![(2, "no-raw-net")]
    );
}

#[test]
fn raw_stream_reads_are_codec_only_within_serve() {
    let src = "pub fn pull(s: &mut impl std::io::Read, buf: &mut [u8]) {\n    \
               let _ = s.read_exact(buf);\n\
               }\n";
    // The frame codec itself may read raw bytes.
    assert_eq!(legacy("crates/serve/src/protocol.rs", src), vec![]);
    // Anywhere else in serve it must go through read_frame.
    assert_eq!(
        legacy("crates/serve/src/engine.rs", src),
        vec![(2, "no-raw-net")]
    );
}

#[test]
fn free_fn_fs_read_is_not_a_stream_read() {
    let src = "pub fn slurp(p: &std::path::Path) -> Vec<u8> {\n    \
               std::fs::read(p).unwrap_or_default()\n\
               }\n";
    assert_eq!(legacy("crates/serve/src/engine.rs", src), vec![]);
}

#[test]
fn det_taint_is_part_of_the_legacy_set() {
    // `xtask lint` runs det-taint as the successor of the old
    // hash-order rule: iteration in a sink file flags under Legacy too.
    let src = "use std::collections::HashMap;\n\
               pub fn encode(m: &HashMap<u32, u64>, out: &mut Vec<u8>) {\n    \
               for (k, _) in m.iter() {\n        \
               out.push(*k as u8);\n    \
               }\n\
               }\n";
    assert_eq!(
        legacy("crates/mining/src/wire.rs", src),
        vec![(3, "det-taint")]
    );
    // Deterministic container at the top level: clean even in a sink.
    let vec_src = "use std::collections::HashSet;\n\
                   pub fn encode(v: &[HashSet<u32>], out: &mut Vec<u8>) {\n    \
                   let groups: Vec<HashSet<u32>> = v.to_vec();\n    \
                   let sorted_groups = groups;\n    \
                   for g in sorted_groups.iter() {\n        \
                   out.push(g.len() as u8);\n    \
                   }\n\
                   }\n";
    assert_eq!(legacy("crates/mining/src/wire.rs", vec_src), vec![]);
}

#[test]
fn legacy_set_excludes_the_flow_rules() {
    // unsafe without SAFETY: a finding under All, invisible to Legacy
    // (so `xtask lint` stays exactly the old gate).
    let src = "pub struct W(pub *const u8);\nunsafe impl Send for W {}\n";
    assert_eq!(legacy("crates/types/src/ptr.rs", src), vec![]);
    let all: Vec<(usize, &str)> = analyze_source("crates/types/src/ptr.rs", src, RuleSet::All)
        .iter()
        .map(|f| (f.line, f.rule))
        .collect();
    assert_eq!(all, vec![(2, "unsafe-audit")]);
}

#[test]
fn suppression_requires_a_reason() {
    // A bare `lint:allow(rule)` without the trailing `: reason` does not
    // suppress.
    let src = "pub fn f(r: Result<u32, ()>) -> u32 {\n    \
               // lint:allow(cluster-unwrap)\n    \
               r.unwrap()\n\
               }\n";
    assert_eq!(
        legacy("crates/cluster/src/x.rs", src),
        vec![(3, "cluster-unwrap")]
    );
    let with_reason = "pub fn f(r: Result<u32, ()>) -> u32 {\n    \
               // lint:allow(cluster-unwrap): infallible by construction\n    \
               r.unwrap()\n\
               }\n";
    assert_eq!(legacy("crates/cluster/src/x.rs", with_reason), vec![]);
}
