//! Golden fixture tests.
//!
//! Every rule in the catalog has a checked-in `*_bad.rs` fixture that
//! must produce exactly the expected `(line, rule)` findings, and an
//! `*_allowed.rs` twin — the same code plus `// lint:allow(<rule>): ..`
//! suppressions — that must be clean. Fixtures are analyzed under a
//! *virtual* workspace path because several rules are path-scoped
//! (cluster-only, serve-only, sink/entry files).
//!
//! Deleting a rule's implementation makes its bad fixture come back
//! empty and fails the table test; deleting the suppression handling
//! makes the allowed twin non-empty and fails it too.

use gar_analyze::rules::CATALOG;
use gar_analyze::{analyze_source, analyze_sources, RuleSet};

struct Fixture {
    name: &'static str,
    /// Virtual workspace-relative path the fixture pretends to live at.
    vpath: &'static str,
    src: &'static str,
    /// Expected findings as (1-based line, rule), in order.
    expect: &'static [(usize, &'static str)],
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "wait_loop_bad",
        vpath: "crates/mining/src/sync_util.rs",
        src: include_str!("fixtures/wait_loop_bad.rs"),
        expect: &[(3, "wait-loop")],
    },
    Fixture {
        name: "wait_loop_allowed",
        vpath: "crates/mining/src/sync_util.rs",
        src: include_str!("fixtures/wait_loop_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "cluster_unwrap_bad",
        vpath: "crates/cluster/src/util.rs",
        src: include_str!("fixtures/cluster_unwrap_bad.rs"),
        expect: &[(2, "cluster-unwrap")],
    },
    Fixture {
        name: "cluster_unwrap_allowed",
        vpath: "crates/cluster/src/util.rs",
        src: include_str!("fixtures/cluster_unwrap_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "relaxed_bad",
        vpath: "crates/mining/src/counters.rs",
        src: include_str!("fixtures/relaxed_bad.rs"),
        expect: &[(3, "relaxed")],
    },
    Fixture {
        name: "relaxed_allowed",
        vpath: "crates/mining/src/counters.rs",
        src: include_str!("fixtures/relaxed_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "no_deadline_bad",
        vpath: "crates/cluster/src/pump.rs",
        src: include_str!("fixtures/no_deadline_bad.rs"),
        expect: &[(2, "no-deadline")],
    },
    Fixture {
        name: "no_deadline_allowed",
        vpath: "crates/cluster/src/pump.rs",
        src: include_str!("fixtures/no_deadline_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "no_instant_bad",
        vpath: "crates/mining/src/timer.rs",
        src: include_str!("fixtures/no_instant_bad.rs"),
        expect: &[(2, "no-instant")],
    },
    Fixture {
        name: "no_instant_allowed",
        vpath: "crates/mining/src/timer.rs",
        src: include_str!("fixtures/no_instant_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "no_raw_net_bad",
        vpath: "crates/mining/src/net_probe.rs",
        src: include_str!("fixtures/no_raw_net_bad.rs"),
        expect: &[(2, "no-raw-net")],
    },
    Fixture {
        name: "no_raw_net_allowed",
        vpath: "crates/mining/src/net_probe.rs",
        src: include_str!("fixtures/no_raw_net_allowed.rs"),
        expect: &[],
    },
    Fixture {
        // The fixture sits *in* a sink file, so its function is its own
        // det-taint witness; the transitive case is covered separately.
        name: "det_taint_bad",
        vpath: "crates/mining/src/wire.rs",
        src: include_str!("fixtures/det_taint_bad.rs"),
        expect: &[(3, "det-taint")],
    },
    Fixture {
        name: "det_taint_allowed",
        vpath: "crates/mining/src/wire.rs",
        src: include_str!("fixtures/det_taint_allowed.rs"),
        expect: &[],
    },
    Fixture {
        // Entry file: `handle_connection` is a panic-audit seed, so the
        // unwrap and the slice indexing are both on a panic path.
        name: "panic_path_bad",
        vpath: "crates/serve/src/server.rs",
        src: include_str!("fixtures/panic_path_bad.rs"),
        expect: &[(2, "panic-path"), (4, "panic-path")],
    },
    Fixture {
        name: "panic_path_allowed",
        vpath: "crates/serve/src/server.rs",
        src: include_str!("fixtures/panic_path_allowed.rs"),
        expect: &[],
    },
    Fixture {
        // The send line must NOT mention the guard (that would read as a
        // handoff); the guard is live because its scope has not closed.
        name: "lock_blocking_bad",
        vpath: "crates/serve/src/worker.rs",
        src: include_str!("fixtures/lock_blocking_bad.rs"),
        expect: &[(5, "lock-blocking")],
    },
    Fixture {
        name: "lock_blocking_allowed",
        vpath: "crates/serve/src/worker.rs",
        src: include_str!("fixtures/lock_blocking_allowed.rs"),
        expect: &[],
    },
    Fixture {
        name: "unsafe_audit_bad",
        vpath: "crates/types/src/ptr.rs",
        src: include_str!("fixtures/unsafe_audit_bad.rs"),
        expect: &[(2, "unsafe-audit")],
    },
    Fixture {
        name: "unsafe_audit_allowed",
        vpath: "crates/types/src/ptr.rs",
        src: include_str!("fixtures/unsafe_audit_allowed.rs"),
        expect: &[],
    },
    Fixture {
        // Regression for the old text lint's worst failure mode: every
        // rule's trigger pattern, but only inside literals and comments.
        // Deliberately placed at a cluster path so the cluster-scoped
        // rules would fire if sanitization ever broke.
        name: "strings_comments_clean",
        vpath: "crates/cluster/src/fixture_strings.rs",
        src: include_str!("fixtures/strings_comments_clean.rs"),
        expect: &[],
    },
];

#[test]
fn fixtures_match_expected_findings() {
    for f in FIXTURES {
        let got = analyze_source(f.vpath, f.src, RuleSet::All);
        let pairs: Vec<(usize, &str)> = got.iter().map(|x| (x.line, x.rule)).collect();
        assert_eq!(
            pairs, f.expect,
            "fixture `{}` (as {}): got {:#?}",
            f.name, f.vpath, got
        );
    }
}

#[test]
fn every_rule_has_a_bad_fixture() {
    for info in CATALOG {
        assert!(
            FIXTURES
                .iter()
                .any(|f| f.expect.iter().any(|(_, r)| *r == info.name)),
            "rule `{}` has no bad fixture exercising it",
            info.name
        );
    }
}

#[test]
fn every_rule_has_a_suppression_fixture() {
    for info in CATALOG {
        let stem = info.name.replace('-', "_");
        let allowed = format!("{stem}_allowed");
        let f = FIXTURES
            .iter()
            .find(|f| f.name == allowed)
            .unwrap_or_else(|| panic!("rule `{}` has no `{allowed}` fixture", info.name));
        assert!(
            f.expect.is_empty(),
            "suppression fixture `{allowed}` must expect zero findings"
        );
        assert!(
            f.src.contains(&format!("lint:allow({})", info.name)),
            "`{allowed}` must carry a `lint:allow({})` suppression",
            info.name
        );
    }
}

// ---------------------------------------------------------------------
// Flow-aware behavior that needs more than one file.
// ---------------------------------------------------------------------

#[test]
fn det_taint_flows_through_the_call_graph() {
    let caller = "use std::collections::HashMap;\n\
                  pub fn summarize(m: &HashMap<u32, u64>) {\n    \
                  for (k, v) in m.iter() {\n        \
                  emit_row(*k, *v);\n    \
                  }\n\
                  }\n";
    let sink = "pub fn emit_row(_k: u32, _v: u64) {}\n";
    let findings = analyze_sources(
        &[
            ("crates/mining/src/aggregate.rs", caller),
            ("crates/mining/src/wire.rs", sink),
        ],
        RuleSet::All,
    );
    let hit = findings
        .iter()
        .find(|f| f.rule == "det-taint")
        .expect("hash iteration reaching a sink through a helper must be flagged");
    assert_eq!(
        (hit.file.as_str(), hit.line),
        ("crates/mining/src/aggregate.rs", 3)
    );
    assert!(
        hit.msg.contains("emit_row"),
        "finding must name the sink witness: {}",
        hit.msg
    );
}

#[test]
fn det_taint_ignores_functions_that_reach_no_sink() {
    let caller = "use std::collections::HashMap;\n\
                  pub fn summarize(m: &HashMap<u32, u64>) {\n    \
                  for (k, v) in m.iter() {\n        \
                  emit_row(*k, *v);\n    \
                  }\n\
                  }\n";
    // Same shape, but `emit_row` lives in a non-sink file.
    let helper = "pub fn emit_row(_k: u32, _v: u64) {}\n";
    let findings = analyze_sources(
        &[
            ("crates/mining/src/aggregate.rs", caller),
            ("crates/mining/src/math.rs", helper),
        ],
        RuleSet::All,
    );
    assert!(
        findings.iter().all(|f| f.rule != "det-taint"),
        "{findings:#?}"
    );
}

#[test]
fn panic_path_flows_from_entry_to_helper() {
    let entry = "pub fn handle_connection() {\n    decode_request();\n}\n";
    let helper = "pub fn decode_request() -> u32 {\n    \
                  let v: Option<u32> = None;\n    \
                  v.unwrap()\n\
                  }\n";
    let findings = analyze_sources(
        &[
            ("crates/serve/src/server.rs", entry),
            ("crates/serve/src/util.rs", helper),
        ],
        RuleSet::All,
    );
    let hit = findings
        .iter()
        .find(|f| f.rule == "panic-path")
        .expect("unwrap in a helper reachable from an entry point must be flagged");
    assert_eq!(
        (hit.file.as_str(), hit.line),
        ("crates/serve/src/util.rs", 3)
    );
    assert!(
        hit.msg.contains("handle_connection"),
        "finding must name the entry witness: {}",
        hit.msg
    );
}

#[test]
fn panic_path_ignores_unreachable_helpers() {
    // The same unwrap, but no entry point anywhere in the set.
    let helper = "pub fn decode_request() -> u32 {\n    \
                  let v: Option<u32> = None;\n    \
                  v.unwrap()\n\
                  }\n";
    let findings = analyze_source("crates/serve/src/util.rs", helper, RuleSet::All);
    assert!(
        findings.iter().all(|f| f.rule != "panic-path"),
        "{findings:#?}"
    );
}

// ---------------------------------------------------------------------
// lock-blocking liveness: the negatives the rule must get right.
// ---------------------------------------------------------------------

#[test]
fn lock_blocking_dropped_guard_is_clean() {
    let src = "use std::sync::Mutex;\n\
               pub fn publish(m: &Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
               let guard = m.lock().unwrap();\n    \
               let v = *guard + 1;\n    \
               drop(guard);\n    \
               tx.send(v).ok();\n\
               }\n";
    let findings = analyze_source("crates/serve/src/worker.rs", src, RuleSet::All);
    assert!(
        findings.iter().all(|f| f.rule != "lock-blocking"),
        "{findings:#?}"
    );
}

#[test]
fn lock_blocking_scope_exit_is_clean() {
    let src = "use std::sync::Mutex;\n\
               pub fn publish(m: &Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
               let v = {\n        \
               let guard = m.lock().unwrap();\n        \
               *guard + 1\n    \
               };\n    \
               tx.send(v).ok();\n\
               }\n";
    let findings = analyze_source("crates/serve/src/worker.rs", src, RuleSet::All);
    assert!(
        findings.iter().all(|f| f.rule != "lock-blocking"),
        "{findings:#?}"
    );
}

#[test]
fn lock_blocking_handoff_is_clean() {
    // The guard appears on the blocking line itself: it is being handed
    // to the call (condvar/collective style), not held across it.
    let src = "pub fn barrier(m: &std::sync::Mutex<u64>) {\n    \
               let guard = m.lock().unwrap();\n    \
               wait_collective(guard);\n\
               }\n";
    let findings = analyze_source("crates/mining/src/sync.rs", src, RuleSet::All);
    assert!(
        findings.iter().all(|f| f.rule != "lock-blocking"),
        "{findings:#?}"
    );
}
