use std::collections::HashMap;
pub fn encode_counts(counts: &HashMap<u32, u64>, out: &mut Vec<u8>) {
    for (k, v) in counts.iter() {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}
