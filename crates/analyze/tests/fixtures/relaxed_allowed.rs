use std::sync::atomic::{AtomicU64, Ordering};
pub fn bump(c: &AtomicU64) {
    // lint:allow(relaxed): fixture — advisory counter, no ordering needed
    c.fetch_add(1, Ordering::Relaxed);
}
