pub struct Wrapper(pub *const u8);
// lint:allow(unsafe-audit): fixture — suppression instead of SAFETY
unsafe impl Send for Wrapper {}
