//! Fixture: rule patterns inside literals and comments must never fire.
// cv.wait(guard) and rx.recv() inside a line comment
// Ordering::Relaxed and Instant::now() in a comment too
pub fn doc_strings() -> (&'static str, &'static str, &'static str) {
    let a = "cv.wait(g) while nothing loops";
    let b = "x.recv() plus Ordering::Relaxed and Instant::now()";
    let c = r#"std::net::TcpListener and x.unwrap() and .expect("boom")"#;
    let _block = 1; /* .wait( in a block comment
        spanning lines with .recv() and unsafe code */
    (a, b, c)
}
