pub fn handle_connection(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    let arr = [1u32, 2, 3];
    let x = arr[v as usize];
    v + x
}
