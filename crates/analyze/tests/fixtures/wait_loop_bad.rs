fn block(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {
    let g = m.lock().unwrap();
    let _g = cv.wait(g).unwrap();
}
