pub fn pump(rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    rx.recv().unwrap_or(0)
}
