pub fn open() {
    // lint:allow(no-raw-net): fixture — test-harness socket
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}
