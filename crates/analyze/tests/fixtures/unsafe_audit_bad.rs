pub struct Wrapper(pub *const u8);
unsafe impl Send for Wrapper {}
