pub fn open() {
    let _ = std::net::TcpListener::bind("127.0.0.1:0");
}
