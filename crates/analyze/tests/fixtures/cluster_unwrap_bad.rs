pub fn f(r: Result<u32, ()>) -> u32 {
    r.unwrap()
}
