fn block(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {
    let g = m.lock().unwrap();
    // lint:allow(wait-loop): fixture — single wakeup is the protocol here
    let _g = cv.wait(g).unwrap();
}
