pub fn f(r: Result<u32, ()>) -> u32 {
    // lint:allow(cluster-unwrap): fixture — infallible by construction
    r.unwrap()
}
