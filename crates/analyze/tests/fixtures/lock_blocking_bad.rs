use std::sync::Mutex;
pub fn publish(m: &Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = m.lock().unwrap();
    let v = *guard + 1;
    tx.send(v).ok();
}
