pub fn pump(rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    // lint:allow(no-deadline): fixture — bounded by the caller's deadline
    rx.recv().unwrap_or(0)
}
