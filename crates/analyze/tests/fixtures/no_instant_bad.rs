pub fn now_marker() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}
