pub fn now_marker() -> u128 {
    // lint:allow(no-instant): fixture — not on a deterministic path
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}
