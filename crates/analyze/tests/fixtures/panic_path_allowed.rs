pub fn handle_connection(input: Option<u32>) -> u32 {
    // lint:allow(panic-path): fixture — input validated by the framing layer
    let v = input.unwrap();
    let arr = [1u32, 2, 3];
    // lint:allow(panic-path): fixture — v is bounds-checked above
    let x = arr[v as usize];
    v + x
}
