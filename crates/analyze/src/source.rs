//! Per-file structural analysis on top of the lexer: block context
//! (loops, `#[cfg(test)]` regions, `unsafe`), item spans (`fn` bodies
//! with their outgoing calls), suppression comments, and justification
//! comments. This is the layer every rule reads; none of it ever sees
//! the inside of a string literal or a comment.

use crate::lexer::{is_ident_char, is_ident_start, lex};

/// A function (or method) definition found in a file.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Simple name (`handle_connection`, not the path).
    pub name: String,
    /// 1-based line of the opening brace's header.
    pub start_line: usize,
    /// 1-based line of the closing brace (inclusive).
    pub end_line: usize,
    /// Whether the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Simple names this function's body mentions in call position
    /// (`foo(..)`, `x.foo(..)`, `T::foo(..)`), deduplicated.
    pub calls: Vec<String>,
}

/// One file, fully analyzed.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw lines — suppression / justification comments live here.
    pub raw: Vec<String>,
    /// Sanitized code lines (see [`crate::lexer`]); rule matching
    /// happens here.
    pub code: Vec<String>,
    /// Line is inside a `#[cfg(test)]`-gated block.
    pub in_test: Vec<bool>,
    /// Every `.wait(` occurrence on the line sits inside a
    /// `while`/`loop` block (true when no wait is present).
    pub wait_in_loop: Vec<bool>,
    /// Index into `fns` of the innermost enclosing function, per line.
    pub enclosing_fn: Vec<Option<usize>>,
    /// Functions defined in this file, in source order.
    pub fns: Vec<FnDecl>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let raw: Vec<String> = src.lines().map(str::to_string).collect();
        let lexed = lex(src);
        let mut code = lexed.code_lines;
        // `str::lines` drops a trailing newline's empty line; keep the
        // two views the same length.
        while code.len() > raw.len() && code.last().is_some_and(|l| l.trim().is_empty()) {
            code.pop();
        }
        while code.len() < raw.len() {
            code.push(String::new());
        }

        let scan = scan_blocks(&code);
        SourceFile {
            rel: rel.to_string(),
            raw,
            code,
            in_test: scan.in_test,
            wait_in_loop: scan.wait_in_loop,
            enclosing_fn: scan.enclosing_fn,
            fns: scan.fns,
        }
    }

    /// `// lint:allow(<rule>): reason` on line `i` (0-based) or anywhere
    /// in the contiguous comment block directly above it. The trailing
    /// colon is part of the pattern: a reason is mandatory.
    pub fn suppressed(&self, i: usize, rule: &str) -> bool {
        let pat = format!("lint:allow({rule}):");
        if self.raw[i].contains(&pat) {
            return true;
        }
        let mut j = i;
        while j > 0 && self.raw[j - 1].trim_start().starts_with("//") {
            j -= 1;
            if self.raw[j].contains(&pat) {
                return true;
            }
        }
        false
    }

    /// A `relaxed:` marker (comment text) on line `i` or within the
    /// preceding `window` lines.
    pub fn has_marker_within(&self, i: usize, marker: &str, window: usize) -> bool {
        let lo = i.saturating_sub(window);
        self.raw[lo..=i]
            .iter()
            .any(|l| l.to_ascii_lowercase().contains(marker))
    }

    /// Is line `i` (0-based) justified by a `// SAFETY:` comment — on
    /// the line itself, or in the comment block above it? The walk
    /// upward skips blank lines, attributes, and directly-adjacent
    /// `unsafe impl` lines, so one comment can cover a `Send`/`Sync`
    /// pair.
    pub fn has_safety_comment(&self, i: usize) -> bool {
        if self.raw[i].contains("SAFETY:") {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = self.raw[j].trim_start();
            if t.starts_with("//") {
                if t.contains("SAFETY:") {
                    return true;
                }
            } else if t.is_empty() {
                // A blank line ends the contiguous region the comment
                // can cover.
                return false;
            } else if t.starts_with("#[") {
                // skip attributes between the comment and the item
            } else if self.code[j].contains("unsafe impl") {
                // A sibling `unsafe impl` (Send next to Sync): keep
                // walking so their shared comment is found.
            } else {
                return false;
            }
        }
        false
    }

    /// The function enclosing 1-based line `line_no`, if any.
    pub fn fn_at(&self, line_no: usize) -> Option<&FnDecl> {
        self.enclosing_fn
            .get(line_no - 1)
            .copied()
            .flatten()
            .map(|i| &self.fns[i])
    }
}

struct BlockScan {
    in_test: Vec<bool>,
    wait_in_loop: Vec<bool>,
    enclosing_fn: Vec<Option<usize>>,
    fns: Vec<FnDecl>,
}

/// The block scanner: text since the last `;`/`{`/`}` is the pending
/// "header"; when a `{` opens, the header decides whether the new block
/// is a loop (`while`/`loop`), test-gated (`#[cfg(test)` attribute), or
/// a function definition (`fn NAME`). Runs on sanitized lines, so
/// braces inside literals cannot desynchronize it.
fn scan_blocks(code: &[String]) -> BlockScan {
    struct Block {
        is_loop: bool,
        is_test: bool,
        fn_idx: Option<usize>,
    }
    let mut stack: Vec<Block> = Vec::new();
    let mut pending = String::new();
    let mut in_test = Vec::with_capacity(code.len());
    let mut wait_in_loop = Vec::with_capacity(code.len());
    let mut enclosing_fn: Vec<Option<usize>> = Vec::with_capacity(code.len());
    let mut fns: Vec<FnDecl> = Vec::new();

    for (lineno0, line) in code.iter().enumerate() {
        // Byte offsets of `.wait(` on this line; the loop check is taken
        // at each occurrence's position so same-line openings
        // (`while p() { g = cv.wait(g); }`) are seen correctly.
        let wait_positions: Vec<usize> = {
            let mut v = Vec::new();
            let mut from = 0;
            while let Some(rel) = line[from..].find(".wait(") {
                v.push(from + rel);
                from += rel + 1;
            }
            v
        };
        let test_at_start = stack.iter().any(|b| b.is_test);
        let fn_at_start = stack.iter().rev().find_map(|b| b.fn_idx);
        let mut all_waits_looped = true;
        // Functions whose definition opens on this line — their bodies
        // may also close on it (`fn f() { g(); }`), so call attribution
        // cannot rely on the stack at line start or line end alone.
        let mut opened_fns: Vec<usize> = Vec::new();

        for (pos, ch) in line.char_indices() {
            if wait_positions.contains(&pos) && !stack.iter().any(|b| b.is_loop) {
                all_waits_looped = false;
            }
            match ch {
                '{' => {
                    let is_loop = find_token(&pending, "while").is_some()
                        || find_token(&pending, "loop").is_some();
                    let is_test =
                        pending.contains("#[cfg(test)") || pending.contains("#[cfg(all(test");
                    let in_test_now = is_test || stack.iter().any(|b| b.is_test);
                    let fn_idx = fn_header_name(&pending).map(|name| {
                        fns.push(FnDecl {
                            name,
                            start_line: lineno0 + 1,
                            end_line: lineno0 + 1,
                            in_test: in_test_now,
                            calls: Vec::new(),
                        });
                        opened_fns.push(fns.len() - 1);
                        fns.len() - 1
                    });
                    stack.push(Block {
                        is_loop,
                        is_test: in_test_now,
                        fn_idx,
                    });
                    pending.clear();
                }
                '}' => {
                    if let Some(b) = stack.pop() {
                        if let Some(fi) = b.fn_idx {
                            fns[fi].end_line = lineno0 + 1;
                        }
                    }
                    pending.clear();
                }
                ';' => pending.clear(),
                c => pending.push(c),
            }
        }
        pending.push(' ');
        // A line counts as test code (or part of a function) if it is
        // inside the region at either end, so closing-brace lines stay
        // attached.
        in_test.push(test_at_start || stack.iter().any(|b| b.is_test));
        wait_in_loop.push(all_waits_looped);
        let fn_now = stack.iter().rev().find_map(|b| b.fn_idx);
        enclosing_fn.push(fn_at_start.or(fn_now));

        // Attribute this line's call names to the innermost function
        // whose body touches the line: the last one opened on it (which
        // covers single-line bodies already popped off the stack), else
        // the one enclosing the line. The names of functions *defined*
        // on this line are excluded — a header `fn alpha() {` is a
        // declaration, not a call of `alpha`.
        if let Some(fi) = opened_fns.last().copied().or(fn_at_start).or(fn_now) {
            for name in call_names(line) {
                if opened_fns.iter().any(|&of| fns[of].name == name) {
                    continue;
                }
                if !fns[fi].calls.contains(&name) {
                    fns[fi].calls.push(name);
                }
            }
        }
    }

    BlockScan {
        in_test,
        wait_in_loop,
        enclosing_fn,
        fns,
    }
}

/// If a pending block header declares a function, its name. Rejects
/// headers where `fn` appears only in a type position (`Box<dyn Fn(..)`
/// uses `Fn`, not `fn`; bare `fn(..)` pointer types have no name).
fn fn_header_name(pending: &str) -> Option<String> {
    let pos = find_token(pending, "fn")?;
    let rest = pending[pos + 2..].trim_start();
    let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

/// Words that appear in call position without being function calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "unsafe", "else", "in", "as",
    "let", "ref", "mut", "box", "await", "yield", "where", "impl", "dyn", "pub", "crate", "super",
    "self", "Self", "use", "mod", "static", "const", "type", "struct", "enum", "union", "trait",
];

/// Simple names in call position on one sanitized line: an identifier
/// immediately followed by `(`. Macro invocations (`name!(`) never
/// match because `!` intervenes.
pub fn call_names(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if is_ident_start(chars[i]) && (i == 0 || !is_ident_char(chars[i - 1])) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            if chars.get(i) == Some(&'(') {
                let name: String = chars[start..i].iter().collect();
                if !CALL_KEYWORDS.contains(&name.as_str()) {
                    out.push(name);
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Byte position of `token` in `code` as a whole word (not part of a
/// longer identifier), or None.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = code[start..].find(token) {
        let pos = start + rel;
        let pre_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        let end = pos + token.len();
        let post_ok = end >= code.len() || !is_ident_char(code[end..].chars().next().unwrap());
        if pre_ok && post_ok {
            return Some(pos);
        }
        start = pos + token.len();
    }
    None
}

/// `find_token` as a boolean.
pub fn contains_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_and_names() {
        let src = "\
fn alpha() {
    beta();
    if x {
        gamma(1);
    }
}

pub(crate) fn beta() -> u32 {
    0
}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<_> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert_eq!(sf.fns[0].start_line, 1);
        assert_eq!(sf.fns[0].end_line, 6);
        assert_eq!(
            sf.fns[0].calls,
            vec!["beta".to_string(), "gamma".to_string()]
        );
        assert_eq!(sf.fn_at(4).unwrap().name, "alpha");
        assert_eq!(sf.fn_at(9).unwrap().name, "beta");
        assert!(sf.fn_at(7).is_none());
    }

    #[test]
    fn methods_and_qualified_calls_are_seen() {
        let src = "\
fn f(x: &Foo) {
    x.method_one();
    Foo::assoc(x);
    helper!(not_a_call);
    let v = vec![1];
    drop(v);
}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let calls = &sf.fns[0].calls;
        assert!(calls.contains(&"method_one".to_string()));
        assert!(calls.contains(&"assoc".to_string()));
        assert!(calls.contains(&"drop".to_string()));
        assert!(!calls.contains(&"helper".to_string()), "{calls:?}");
        assert!(!calls.contains(&"vec".to_string()), "{calls:?}");
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn() {
        let src = "\
fn spawner() {
    std::thread::spawn(move || {
        inner_work();
    });
}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(sf.fns.len(), 1);
        assert!(sf.fns[0].calls.contains(&"inner_work".to_string()));
    }

    #[test]
    fn cfg_test_region_marks_fns() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    fn helper() {
        prod();
    }
}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!sf.fns[0].in_test);
        assert!(sf.fns[1].in_test);
        assert!(sf.in_test[5]);
        assert!(!sf.in_test[0]);
    }

    #[test]
    fn braces_in_strings_do_not_desync_blocks() {
        let src = "\
fn f() {
    let s = \"{{{\";
    g(s);
}
fn after() {}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<_> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["f", "after"]);
        assert_eq!(sf.fns[0].end_line, 4);
    }

    #[test]
    fn safety_comment_lookup() {
        let src = "\
// SAFETY: serialized by the scheduler.
unsafe impl Sync for A {}
unsafe impl Send for A {}

unsafe impl Send for B {}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(sf.has_safety_comment(1));
        // The Send impl is covered by hopping over the sibling Sync impl.
        assert!(sf.has_safety_comment(2));
        // B has no comment anywhere above its contiguous region.
        assert!(!sf.has_safety_comment(4));
    }

    #[test]
    fn suppression_requires_reason() {
        let src = "\
fn f() {
    // lint:allow(some-rule): justified here
    target();
    // lint:allow(other-rule)
    target();
}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(sf.suppressed(2, "some-rule"));
        assert!(!sf.suppressed(4, "other-rule"));
    }

    #[test]
    fn fn_pointer_types_are_not_declarations() {
        let src = "\
struct S {
    callback: fn(u32) -> u32,
}
fn real() {}
";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<_> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
