//! gar-analyze: zero-dependency, token/flow-aware static analysis for
//! this workspace.
//!
//! Pipeline: [`lexer`] turns each file into a token stream plus
//! *sanitized code lines* (string/char literals blanked, comments
//! stripped, line numbers preserved exactly); [`source`] layers block
//! structure, `#[cfg(test)]` regions, function spans and per-function
//! call names on top; [`callgraph`] links every file's functions into a
//! name-resolved call graph; [`rules`] runs the catalog — six line
//! rules ported from the old `xtask lint` pass plus four flow-aware
//! rules (`det-taint`, `panic-path`, `lock-blocking`, `unsafe-audit`).
//!
//! Driven by `cargo xtask analyze` (full catalog, baseline-aware,
//! `--check` for CI) and `cargo xtask lint` (legacy subset).

pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod source;

use callgraph::{CallGraph, CrateDeps};
use rules::FlowContext;
use source::SourceFile;
use std::fmt;
use std::path::Path;

/// Which rules to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleSet {
    /// The original `xtask lint` surface: the six line rules plus
    /// `det-taint` (successor of `hash-order`).
    Legacy,
    /// Everything, including `panic-path`, `lock-blocking` and
    /// `unsafe-audit`.
    All,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl Finding {
    /// The stable identity used by the baseline file: `file:line:rule`.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Result of an analysis run.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub fns_indexed: usize,
}

/// Analyzes a set of in-memory `(relative_path, source)` files as one
/// workspace — the API the golden/fixture tests use, and the only way
/// cross-file rules can be exercised hermetically.
pub fn analyze_sources(files: &[(&str, &str)], set: RuleSet) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    // In-memory fixtures have no manifests: name resolution is allowed
    // to cross any crate boundary.
    let graph = CallGraph::build(&parsed, &CrateDeps::default());
    let flow = FlowContext::build(&graph);
    let mut findings = Vec::new();
    for sf in &parsed {
        findings.extend(rules::check_file(sf, &graph, &flow, set));
    }
    sort_findings(&mut findings);
    findings
}

/// Single-file convenience wrapper around [`analyze_sources`].
pub fn analyze_source(rel: &str, src: &str, set: RuleSet) -> Vec<Finding> {
    analyze_sources(&[(rel, src)], set)
}

/// Analyzes every `crates/*/src/**/*.rs` under `root`.
pub fn analyze_root(root: &Path, set: RuleSet) -> Result<Analysis, String> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut deps = CrateDeps::default();
    for dir in &crate_dirs {
        collect_rs_files(&dir.join("src"), &mut paths)?;
        if let (Some(name), Ok(manifest)) = (
            dir.file_name().map(|n| n.to_string_lossy().into_owned()),
            std::fs::read_to_string(dir.join("Cargo.toml")),
        ) {
            deps.add_manifest(&name, &manifest);
        }
    }
    deps.close();
    paths.sort();

    let mut parsed = Vec::new();
    for path in &paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        parsed.push(SourceFile::parse(&rel, &src));
    }

    let graph = CallGraph::build(&parsed, &deps);
    let flow = FlowContext::build(&graph);
    let mut findings = Vec::new();
    for sf in &parsed {
        findings.extend(rules::check_file(sf, &graph, &flow, set));
    }
    sort_findings(&mut findings);
    Ok(Analysis {
        findings,
        files_scanned: parsed.len(),
        fns_indexed: graph.nodes.len(),
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // a crate without src/ (or a non-crate dir) is fine
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn sort_findings(findings: &mut Vec<Finding>) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    // One line can trip the same rule twice (e.g. an unwrap and an
    // index on one line, both panic-path); report it once.
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// A checked-in list of accepted findings (`file:line:rule` per line;
/// `#` comments and blanks ignored). The intent is an *empty* baseline:
/// entries are a temporary parking lot while a violation is being
/// fixed, not a long-term suppression mechanism (that's what
/// `// lint:allow(rule): reason` is for — it carries a reason and moves
/// with the code).
#[derive(Default)]
pub struct Baseline {
    entries: Vec<String>,
}

impl Baseline {
    pub fn parse(text: &str) -> Baseline {
        Baseline {
            entries: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    /// Loads `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits findings into (new, baselined) and reports stale baseline
    /// entries that no longer match any finding.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut new = Vec::new();
        let mut baselined = Vec::new();
        let mut hit = vec![false; self.entries.len()];
        for f in findings {
            let key = f.key();
            match self.entries.iter().position(|e| *e == key) {
                Some(i) => {
                    hit[i] = true;
                    baselined.push(f);
                }
                None => new.push(f),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&hit)
            .filter(|(_, h)| !**h)
            .map(|(e, _)| e.clone())
            .collect();
        BaselineOutcome {
            new,
            baselined,
            stale,
        }
    }
}

/// What the baseline did to a finding list.
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail `--check`.
    pub new: Vec<Finding>,
    /// Findings matched (and silenced) by a baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing: the violation was fixed
    /// (or moved) and the entry should be deleted.
    pub stale: Vec<String>,
}

// ---------------------------------------------------------------------
// JSON report (schema `gar-analyze-v1`) — hand-rolled, zero-dep.
// ---------------------------------------------------------------------

/// Serializes a run as the `gar-analyze-v1` JSON document consumed by
/// the CI artifact step.
pub fn to_json(analysis: &Analysis, outcome: &BaselineOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"gar-analyze-v1\",\n");
    s.push_str(&format!(
        "  \"files_scanned\": {},\n  \"functions_indexed\": {},\n",
        analysis.files_scanned, analysis.fns_indexed
    ));
    s.push_str("  \"rules\": [\n");
    for (i, r) in rules::CATALOG.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"legacy\": {}, \"summary\": {}}}{}\n",
            json_str(r.name),
            r.legacy,
            json_str(r.summary),
            comma(i, rules::CATALOG.len())
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    let total = outcome.new.len() + outcome.baselined.len();
    let mut emitted = 0;
    for (list, baselined) in [(&outcome.new, false), (&outcome.baselined, true)] {
        for f in list.iter() {
            s.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"baselined\": {}, \"msg\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                baselined,
                json_str(&f.msg),
                comma(emitted, total)
            ));
            emitted += 1;
        }
    }
    s.push_str("  ],\n");
    s.push_str("  \"baseline\": {\n");
    s.push_str(&format!(
        "    \"applied\": {},\n    \"stale\": [",
        outcome.baselined.len()
    ));
    for (i, e) in outcome.stale.iter().enumerate() {
        s.push_str(&format!("{}{}", json_str(e), comma(i, outcome.stale.len())));
    }
    s.push_str("]\n  }\n}\n");
    s
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parse_skips_comments_and_blanks() {
        let b = Baseline::parse("# header\n\ncrates/a/src/lib.rs:3:wait-loop\n");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn baseline_apply_splits_and_reports_stale() {
        let b = Baseline::parse("crates/a/src/lib.rs:3:wait-loop\ncrates/gone.rs:1:relaxed\n");
        let findings = vec![
            Finding {
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                rule: "wait-loop",
                msg: String::new(),
            },
            Finding {
                file: "crates/a/src/lib.rs".into(),
                line: 9,
                rule: "relaxed",
                msg: String::new(),
            },
        ];
        let out = b.apply(findings);
        assert_eq!(out.new.len(), 1);
        assert_eq!(out.new[0].line, 9);
        assert_eq!(out.baselined.len(), 1);
        assert_eq!(out.stale, vec!["crates/gone.rs:1:relaxed".to_string()]);
    }

    #[test]
    fn json_escapes_and_is_wellformed_enough() {
        let analysis = Analysis {
            findings: Vec::new(),
            files_scanned: 2,
            fns_indexed: 7,
        };
        let outcome = BaselineOutcome {
            new: vec![Finding {
                file: "crates/a/src/lib.rs".into(),
                line: 1,
                rule: "relaxed",
                msg: "needs a \"reason\"\twith escapes".into(),
            }],
            baselined: Vec::new(),
            stale: Vec::new(),
        };
        let json = to_json(&analysis, &outcome);
        assert!(json.contains("\"schema\": \"gar-analyze-v1\""));
        assert!(json.contains("\\\"reason\\\"\\twith"));
        assert!(json.contains("\"files_scanned\": 2"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn analyze_source_runs_the_pipeline_end_to_end() {
        let findings = analyze_source(
            "crates/x/src/lib.rs",
            "fn f(cv: &Condvar, g: G) {\n    let _ = cv.wait(g);\n}\n",
            RuleSet::All,
        );
        assert!(
            findings.iter().any(|f| f.rule == "wait-loop"),
            "{findings:?}"
        );
    }
}
