//! The rule catalog. Six line-oriented rules ported from the original
//! `xtask lint` pass (now matching on sanitized code lines, so string
//! literals and comments can never trigger them), plus four flow-aware
//! rules that need the item parser and call graph:
//!
//! * `det-taint` — `HashMap`/`HashSet` iteration in any function from
//!   which a serialization/wire/report sink is reachable over the call
//!   graph. Successor of the old `hash-order` rule, whose hard-coded
//!   file list could not follow hash iteration through helpers.
//! * `panic-path` — `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`
//!   (and, within the serve/cluster crates, direct slice indexing)
//!   transitively reachable from a serve connection/worker entry point
//!   or a cluster node body: a panic there kills a handler thread or
//!   poisons a node without an error frame.
//! * `lock-blocking` — a `Mutex`/`RwLock` guard binding held live
//!   across a blocking call (`send`/`recv`/`wait_collective`/socket
//!   I/O): the classic convoy/deadlock shape.
//! * `unsafe-audit` — every `unsafe` occurrence must carry a
//!   `// SAFETY:` justification on the line or in the comment block
//!   directly above it.
//!
//! Suppression for every rule: `// lint:allow(<rule>): <reason>` on the
//! offending line or the comment block above. The reason is mandatory.

use crate::callgraph::CallGraph;
use crate::lexer::is_ident_char;
use crate::source::{call_names, contains_token, find_token, SourceFile};
use crate::{Finding, RuleSet};
use std::collections::HashMap;

pub const RULE_WAIT_LOOP: &str = "wait-loop";
pub const RULE_CLUSTER_UNWRAP: &str = "cluster-unwrap";
pub const RULE_RELAXED: &str = "relaxed";
pub const RULE_NO_DEADLINE: &str = "no-deadline";
pub const RULE_NO_INSTANT: &str = "no-instant";
pub const RULE_NO_RAW_NET: &str = "no-raw-net";
pub const RULE_DET_TAINT: &str = "det-taint";
pub const RULE_PANIC_PATH: &str = "panic-path";
pub const RULE_LOCK_BLOCKING: &str = "lock-blocking";
pub const RULE_UNSAFE_AUDIT: &str = "unsafe-audit";

/// One catalog entry, for `--help`-style output and the JSON report.
pub struct RuleInfo {
    pub name: &'static str,
    /// Present in the original `xtask lint` set (vs. new in `analyze`).
    pub legacy: bool,
    pub summary: &'static str,
}

/// Every rule, in reporting order.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        name: RULE_WAIT_LOOP,
        legacy: true,
        summary: "Condvar::wait must sit inside a while/loop predicate re-check",
    },
    RuleInfo {
        name: RULE_CLUSTER_UNWRAP,
        legacy: true,
        summary: "no unwrap/expect in crates/cluster non-test code",
    },
    RuleInfo {
        name: RULE_RELAXED,
        legacy: true,
        summary: "Ordering::Relaxed needs a nearby `// relaxed:` justification",
    },
    RuleInfo {
        name: RULE_NO_DEADLINE,
        legacy: true,
        summary: "blocking recv/wait in crates/cluster must be deadline-aware",
    },
    RuleInfo {
        name: RULE_NO_INSTANT,
        legacy: true,
        summary: "Instant::now() is forbidden outside crates/obs",
    },
    RuleInfo {
        name: RULE_NO_RAW_NET,
        legacy: true,
        summary: "sockets only in crates/serve; raw stream reads only in the frame codec",
    },
    RuleInfo {
        name: RULE_DET_TAINT,
        legacy: true,
        summary: "no hash-order iteration in functions that reach a wire/report/store sink",
    },
    RuleInfo {
        name: RULE_PANIC_PATH,
        legacy: false,
        summary: "no panic sites reachable from serve handlers or cluster node bodies",
    },
    RuleInfo {
        name: RULE_LOCK_BLOCKING,
        legacy: false,
        summary: "no lock guard held across send/recv/collective/socket calls",
    },
    RuleInfo {
        name: RULE_UNSAFE_AUDIT,
        legacy: false,
        summary: "every `unsafe` needs a `// SAFETY:` justification",
    },
];

/// The one file allowed to read raw bytes off a stream: the frame codec
/// whose length guard (`MAX_FRAME_BYTES`) every read passes through.
const FRAME_CODEC_FILE: &str = "crates/serve/src/protocol.rs";

/// How many lines above an `Ordering::Relaxed` site a `relaxed:`
/// justification comment may sit (covers one comment per short fn).
const RELAXED_WINDOW: usize = 12;

/// Files whose functions *are* determinism sinks: they encode wire
/// messages, build rule reports, or persist deterministic artifacts
/// (stores, checkpoints, metrics). A function anywhere in the workspace
/// that transitively calls into one of these is "sink-reaching", and
/// hash-order iteration inside it is flagged by `det-taint`. Unlike the
/// old `HASH_ORDER_SCOPE`, nothing outside this list needs to be
/// enumerated — the call graph finds the callers.
const SINK_FILES: &[&str] = &[
    "crates/mining/src/wire.rs",
    "crates/mining/src/report.rs",
    "crates/mining/src/persist.rs",
    "crates/mining/src/checkpoint.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/store.rs",
    "crates/obs/src/json.rs",
];

/// Files whose functions are panic-audit entry points: the serve
/// accept/connection/worker loops, and the cluster node machinery every
/// mining node body runs on. Everything transitively callable from
/// these must fail with a typed `Error` (poisoning the collectives or
/// answering an error frame), never a panic.
const ENTRY_FILES: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/cluster/src/runner.rs",
    "crates/cluster/src/node.rs",
];

/// Calls a lock guard must not be held across: message passing,
/// collective waits, connection setup, and frame I/O. Matched as a
/// token immediately followed by `(`.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "connect",
    "read_frame",
    "write_frame",
    "wait_collective",
];

/// Cross-file context shared by the flow-aware rules.
pub struct FlowContext {
    /// fn-node → name of the sink it reaches (det-taint witness).
    taint: HashMap<usize, String>,
    /// fn-node → name of the entry that reaches it (panic-path witness).
    panics: HashMap<usize, String>,
}

impl FlowContext {
    pub fn build(graph: &CallGraph) -> FlowContext {
        let sinks = graph.select(|n| !n.in_test && SINK_FILES.contains(&n.file.as_str()));
        let entries = graph.select(|n| !n.in_test && ENTRY_FILES.contains(&n.file.as_str()));
        FlowContext {
            taint: graph.reaching(&sinks),
            panics: graph.reachable_from(&entries),
        }
    }

    fn fn_witness<'a>(
        &'a self,
        map: &'a HashMap<usize, String>,
        graph: &CallGraph,
        sf: &SourceFile,
        line0: usize,
    ) -> Option<&'a str> {
        let f = sf.fn_at(line0 + 1)?;
        let node = graph.node_at(&sf.rel, f.start_line)?;
        map.get(&node).map(String::as_str)
    }

    /// If 0-based `line0` of `sf` sits in a sink-reaching function, the
    /// sink name it reaches.
    pub fn sink_witness(&self, graph: &CallGraph, sf: &SourceFile, line0: usize) -> Option<&str> {
        self.fn_witness(&self.taint, graph, sf, line0)
    }

    /// If 0-based `line0` sits in a function reachable from a
    /// serve/cluster entry point, the entry's name.
    pub fn entry_witness(&self, graph: &CallGraph, sf: &SourceFile, line0: usize) -> Option<&str> {
        self.fn_witness(&self.panics, graph, sf, line0)
    }
}

/// Runs every selected rule over one file. `graph`/`flow` carry the
/// workspace-level context.
pub fn check_file(
    sf: &SourceFile,
    graph: &CallGraph,
    flow: &FlowContext,
    set: RuleSet,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let rel = sf.rel.as_str();

    for (i, code) in sf.code.iter().enumerate() {
        let line_no = i + 1;
        if sf.in_test[i] {
            continue;
        }
        let mut emit = |rule: &'static str, msg: String| {
            if !sf.suppressed(i, rule) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: line_no,
                    rule,
                    msg,
                });
            }
        };

        // ----- wait-loop: all crates -------------------------------------
        if code.contains(".wait(") && !sf.wait_in_loop[i] {
            emit(
                RULE_WAIT_LOOP,
                "Condvar::wait outside a while/loop predicate re-check; a spurious \
                 or early wakeup returns with the condition unmet"
                    .to_string(),
            );
        }

        // ----- cluster-unwrap: crates/cluster only -----------------------
        if rel.starts_with("crates/cluster/")
            && (code.contains(".unwrap()") || code.contains(".expect("))
        {
            emit(
                RULE_CLUSTER_UNWRAP,
                "unwrap/expect in cluster non-test code; return an Error (and let \
                 the collectives be poisoned) instead of panicking a node"
                    .to_string(),
            );
        }

        // ----- no-deadline: crates/cluster only --------------------------
        if rel.starts_with("crates/cluster/") {
            if let Some(what) = blocking_call_without_deadline(code) {
                emit(
                    RULE_NO_DEADLINE,
                    format!(
                        "blocking `{what}` without a deadline in cluster non-test code; \
                         use the deadline-aware API (NodeCtx::recv / recv_timeout / \
                         wait_timeout) so a hung peer surfaces as Error::Timeout"
                    ),
                );
            }
        }

        // ----- no-instant: everywhere except crates/obs ------------------
        if !rel.starts_with("crates/obs/") && code.contains("Instant::now()") {
            emit(
                RULE_NO_INSTANT,
                "raw Instant::now() outside crates/obs; time through \
                 gar_obs::Stopwatch (or a span) so wall-clock reads stay \
                 observable and out of deterministic artifacts"
                    .to_string(),
            );
        }

        // ----- relaxed: all crates ---------------------------------------
        if code.contains("Ordering::Relaxed")
            && !sf.has_marker_within(i, "relaxed:", RELAXED_WINDOW)
        {
            emit(
                RULE_RELAXED,
                format!(
                    "Ordering::Relaxed without a `// relaxed: <why>` justification \
                     within {RELAXED_WINDOW} lines"
                ),
            );
        }

        // ----- no-raw-net ------------------------------------------------
        if !rel.starts_with("crates/serve/") {
            if let Some(what) = raw_net_token(code) {
                emit(
                    RULE_NO_RAW_NET,
                    format!(
                        "raw `{what}` outside crates/serve; network I/O lives in the \
                         serving crate so every frame passes the MAX_FRAME_BYTES guard \
                         in gar_serve::protocol"
                    ),
                );
            }
        } else if rel != FRAME_CODEC_FILE {
            if let Some(what) = raw_stream_read(code) {
                emit(
                    RULE_NO_RAW_NET,
                    format!(
                        "raw `{what}` outside {FRAME_CODEC_FILE}; read frames through \
                         protocol::read_frame so the length is checked against \
                         MAX_FRAME_BYTES before any allocation"
                    ),
                );
            }
        }

        if set == RuleSet::All {
            // ----- panic-path --------------------------------------------
            if let Some(entry) = flow.entry_witness(graph, sf, i) {
                // unwrap/expect in crates/cluster is already the
                // cluster-unwrap rule's finding; don't double-report.
                if !rel.starts_with("crates/cluster/")
                    && (code.contains(".unwrap()") || code.contains(".expect("))
                {
                    emit(
                        RULE_PANIC_PATH,
                        format!(
                            "unwrap/expect reachable from entry point `{entry}`; a panic \
                             here kills the handler/worker silently — return a typed \
                             Error so it surfaces as an error frame / Error::Poisoned"
                        ),
                    );
                }
                if let Some(mac) = panic_macro(code) {
                    emit(
                        RULE_PANIC_PATH,
                        format!(
                            "`{mac}` reachable from entry point `{entry}`; convert to a \
                             typed Error so the failure surfaces as an error frame / \
                             Error::Poisoned instead of a dead thread"
                        ),
                    );
                }
                if (rel.starts_with("crates/serve/") || rel.starts_with("crates/cluster/"))
                    && has_direct_indexing(code)
                {
                    emit(
                        RULE_PANIC_PATH,
                        format!(
                            "direct slice indexing reachable from entry point `{entry}`; \
                             an out-of-bounds here panics the handler — use get()/ \
                             bounds-checked access or justify with a suppression"
                        ),
                    );
                }
            }

            // ----- unsafe-audit ------------------------------------------
            if contains_token(code, "unsafe") && !sf.has_safety_comment(i) {
                emit(
                    RULE_UNSAFE_AUDIT,
                    "`unsafe` without a `// SAFETY:` comment stating the invariant \
                     that makes it sound (on the line or directly above)"
                        .to_string(),
                );
            }
        }
    }

    // ----- det-taint (file-level pass: needs declared-name pool) ---------
    findings.extend(det_taint(sf, graph, flow));

    // ----- lock-blocking (file-level pass: needs guard liveness) ---------
    if set == RuleSet::All {
        findings.extend(lock_blocking(sf));
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------
// det-taint
// ---------------------------------------------------------------------

/// Declaration-site tracking: collect every identifier declared (or
/// received as a parameter/field) with a `HashMap`/`HashSet` type in
/// this file, then flag iteration over any of them inside functions
/// that can reach a determinism sink.
fn det_taint(sf: &SourceFile, graph: &CallGraph, flow: &FlowContext) -> Vec<Finding> {
    let mut names: Vec<String> = Vec::new();
    for code in &sf.code {
        if !mentions_hash_type(code) {
            continue;
        }
        if let Some(name) = declared_name(code) {
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    if names.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    for (i, code) in sf.code.iter().enumerate() {
        if sf.in_test[i] || sf.suppressed(i, RULE_DET_TAINT) {
            continue;
        }
        let Some(sink) = flow.sink_witness(graph, sf, i) else {
            continue;
        };
        for name in &names {
            if iterates(code, name) {
                findings.push(Finding {
                    file: sf.rel.clone(),
                    line: i + 1,
                    rule: RULE_DET_TAINT,
                    msg: format!(
                        "iteration over hash collection `{name}` in a function that \
                         reaches determinism sink `{sink}`; hash order is \
                         nondeterministic — sort first or use an ordered structure"
                    ),
                });
                break;
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// lock-blocking
// ---------------------------------------------------------------------

/// Guard-liveness walk: a binding whose initializer takes a lock
/// (`.lock()`, RwLock `.read()` / `.write()`) is live until its scope
/// closes or it is explicitly dropped; a blocking call while any guard
/// is live (and not being handed to the call itself) is a finding.
fn lock_blocking(sf: &SourceFile) -> Vec<Finding> {
    struct Guard {
        name: String,
        depth: usize,
        line: usize,
    }
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: usize = 0;

    for (i, code) in sf.code.iter().enumerate() {
        // Blocking calls are checked against guards bound on *earlier*
        // lines: a guard consumed or taken on the same line (condvar
        // handoff, `drop(g)`, the binding itself) is not "held across".
        if !sf.in_test[i] && !sf.suppressed(i, RULE_LOCK_BLOCKING) {
            if let Some(call) = blocking_call(code) {
                if let Some(g) = guards.iter().find(|g| !contains_token(code, &g.name)) {
                    findings.push(Finding {
                        file: sf.rel.clone(),
                        line: i + 1,
                        rule: RULE_LOCK_BLOCKING,
                        msg: format!(
                            "`{call}(..)` while lock guard `{}` (taken on line {}) is \
                             live; blocking with a lock held convoys every other \
                             locker — drop the guard (or move the blocking call out \
                             of its scope) first",
                            g.name, g.line
                        ),
                    });
                }
            }
        }

        // `drop(name)` / `std::mem::drop(name)` ends a guard early.
        for g_idx in (0..guards.len()).rev() {
            let pat = format!("drop({})", guards[g_idx].name);
            if code.contains(&pat) {
                guards.remove(g_idx);
            }
        }

        // New guard binding?
        if let Some(name) = guard_binding(code) {
            // Brace depth of the binding: after this line's braces.
            let end_depth = line_end_depth(depth, code);
            guards.push(Guard {
                name,
                depth: end_depth,
                line: i + 1,
            });
        }

        // Track depth; kill guards whose scope closed (any dip below
        // their binding depth, so `} else {` ends the if-arm's guards).
        let (min_depth, end_depth) = line_depth_profile(depth, code);
        guards.retain(|g| g.depth <= min_depth);
        depth = end_depth;
    }
    findings
}

/// The first blocking-call name on the line, if any.
fn blocking_call(code: &str) -> Option<&'static str> {
    for name in BLOCKING_CALLS {
        let mut from = 0;
        while let Some(pos) = find_token(&code[from..], name) {
            let abs = from + pos;
            let after = abs + name.len();
            if code[after..].starts_with('(') {
                return Some(name);
            }
            from = after;
            if from >= code.len() {
                break;
            }
        }
    }
    None
}

/// `let [mut] NAME = <expr containing .lock() / .read() / .write()>`.
fn guard_binding(code: &str) -> Option<String> {
    let has_acquire =
        code.contains(".lock()") || code.contains(".read()") || code.contains(".write()");
    if !has_acquire {
        return None;
    }
    let pos = find_token(code, "let")?;
    let rest = code[pos + 3..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
    if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit()) || name == "_" {
        return None;
    }
    Some(name)
}

/// (minimum, final) brace depth over the line, starting from `depth`.
fn line_depth_profile(depth: usize, code: &str) -> (usize, usize) {
    let mut d = depth;
    let mut min = depth;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => {
                d = d.saturating_sub(1);
                min = min.min(d);
            }
            _ => {}
        }
    }
    (min, d)
}

fn line_end_depth(depth: usize, code: &str) -> usize {
    line_depth_profile(depth, code).1
}

// ---------------------------------------------------------------------
// Shared helpers (ported from the original text lint; they now run on
// sanitized lines, so literals and comments are invisible to them).
// ---------------------------------------------------------------------

/// Returns the offending call (`.recv()` or `.wait(`) when the line
/// contains a blocking receive/wait with no deadline path. `.recv()` is
/// allowed on the `ctx` receiver by convention: `NodeCtx::recv` *is* the
/// deadline-aware wrapper (it polls `recv_timeout` in poison-checked
/// slices). The `_timeout`/`_deadline` variants never match — the
/// patterns require the opening paren right after the bare name.
fn blocking_call_without_deadline(code: &str) -> Option<&'static str> {
    if code.contains(".wait(") {
        return Some(".wait(");
    }
    let mut from = 0;
    while let Some(rel) = code[from..].find(".recv()") {
        let pos = from + rel;
        if receiver_ident(&code[..pos]) != "ctx" {
            return Some(".recv()");
        }
        from = pos + ".recv()".len();
    }
    None
}

/// The identifier segment immediately preceding a method call:
/// `self.ctx` → "ctx", `rx` → "rx", `self.inbox` → "inbox".
fn receiver_ident(before: &str) -> &str {
    let start = before
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(before.len());
    &before[start..]
}

fn starts_with_hash_type(ty: &str) -> bool {
    let ty = ty.strip_prefix('&').unwrap_or(ty).trim_start();
    let ty = ty.strip_prefix("mut ").unwrap_or(ty).trim_start();
    ["FxHashMap", "FxHashSet", "HashMap", "HashSet"]
        .iter()
        .any(|t| ty.starts_with(t) && !is_ident_char(ty[t.len()..].chars().next().unwrap_or('<')))
}

fn mentions_hash_type(code: &str) -> bool {
    ["FxHashMap", "FxHashSet", "HashMap", "HashSet"]
        .iter()
        .any(|t| contains_token(code, t))
}

/// Extracts the declared identifier from a line that mentions a hash
/// type: `let [mut] NAME ...`, or `NAME: [&][mut ]...Hash...` for
/// parameters and struct fields. Returns None for `use` lines, return
/// types and other non-declarations.
fn declared_name(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return None;
    }
    // `let [mut] NAME` wins when present (covers `let x: T = ..` and
    // `let x = FxHashMap::default()`), but only when the *top-level*
    // type is the hash collection — `let v: Vec<FxHashSet<u32>> = ..`
    // iterates deterministically and must not poison the name.
    if let Some(pos) = find_token(code, "let") {
        let rest = code[pos + 3..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
        if !name.is_empty() {
            let after = rest[name.len()..].trim_start();
            let top_level = if let Some(ann) = after.strip_prefix(':') {
                // Annotated: check the annotation's outermost type.
                let ty = ann.split('=').next().unwrap_or(ann).trim();
                starts_with_hash_type(ty)
            } else if let Some(rhs) = after.strip_prefix('=') {
                // Unannotated: `let m = FxHashMap::default()` etc.
                starts_with_hash_type(rhs.trim_start())
            } else {
                false
            };
            return top_level.then_some(name);
        }
    }
    // Parameter / field: the identifier before the `:` that precedes the
    // hash type token.
    for ty in ["FxHashMap", "FxHashSet", "HashMap", "HashSet"] {
        let Some(tpos) = find_token(code, ty) else {
            continue;
        };
        let before = code[..tpos].trim_end();
        // Skip type-path prefixes (`gar_types::FxHashMap<..>`) and
        // return types (`-> FxHashMap<..>`).
        if before.ends_with("::") || before.ends_with("->") {
            return None;
        }
        let before = before
            .strip_suffix("mut")
            .map(str::trim_end)
            .unwrap_or(before);
        let before = before
            .strip_suffix('&')
            .map(str::trim_end)
            .unwrap_or(before);
        let before = match before.strip_suffix(':') {
            Some(b) => b.trim_end(),
            None => return None,
        };
        let name: String = before
            .chars()
            .rev()
            .take_while(|c| is_ident_char(*c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Some(name);
        }
    }
    None
}

/// Does this line iterate `name`? Either a `for .. in` whose iterable
/// mentions the identifier, or a direct iterator-adaptor call on it.
fn iterates(code: &str, name: &str) -> bool {
    for suffix in [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ] {
        let pat = format!("{name}{suffix}");
        if let Some(pos) = code.find(&pat) {
            // Reject partial-identifier matches (`sorted_groups.iter()`
            // must not match name `groups`).
            let pre_ok = pos == 0 || !code[..pos].chars().next_back().is_some_and(is_ident_char);
            if pre_ok {
                return true;
            }
        }
    }
    if let Some(for_pos) = find_token(code, "for") {
        let after_for = &code[for_pos..];
        if let Some(in_rel) = find_token(after_for, "in") {
            let iterable = &after_for[in_rel + 2..];
            // `for x in map` / `for x in &map` / `for (k, v) in &mut map`
            if find_token(iterable, name).is_some() {
                return true;
            }
        }
    }
    false
}

/// The socket vocabulary banned outside `crates/serve`. `std::net` is a
/// path fragment rather than an identifier, so a plain substring match
/// is the right test for it.
fn raw_net_token(code: &str) -> Option<&'static str> {
    if code.contains("std::net") {
        return Some("std::net");
    }
    ["TcpListener", "TcpStream", "UdpSocket"]
        .into_iter()
        .find(|t| contains_token(code, t))
}

/// Bulk stream reads banned inside `crates/serve` outside the frame
/// codec. Method-call syntax only: free functions like `std::fs::read`
/// have `::` (not `.`) before the name and stay legal.
fn raw_stream_read(code: &str) -> Option<&'static str> {
    [".read_exact(", ".read_to_end(", ".read("]
        .into_iter()
        .find(|t| code.contains(t))
        .map(|t| t.trim_start_matches('.').trim_end_matches('('))
}

/// A diverging macro in call position: `panic!(`, `unreachable!(`, ...
fn panic_macro(code: &str) -> Option<&'static str> {
    for name in ["panic", "unreachable", "todo", "unimplemented"] {
        let pat = format!("{name}!(");
        if let Some(pos) = code.find(&pat) {
            let pre_ok = pos == 0 || !code[..pos].chars().next_back().is_some_and(is_ident_char);
            // `debug_assert!`-style macros end with the name too; the
            // pre-char check rejects `_panic!(` but `assert` never
            // contains these names.
            if pre_ok {
                return Some(match name {
                    "panic" => "panic!",
                    "unreachable" => "unreachable!",
                    "todo" => "todo!",
                    _ => "unimplemented!",
                });
            }
        }
    }
    None
}

/// Direct indexing: `expr[..]` where `expr` ends in an identifier, a
/// `)` or a `]`. Attribute lines (`#[..]`) and slice *types* (`&[u8]`,
/// `[u8; 4]` in type position) never match because `[` there follows
/// punctuation or whitespace.
fn has_direct_indexing(code: &str) -> bool {
    let trimmed = code.trim_start();
    if trimmed.starts_with('#') {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '[' && i > 0 {
            let p = chars[i - 1];
            if is_ident_char(p) || p == ')' || p == ']' {
                return true;
            }
        }
    }
    false
}

/// Call names mentioned on a line — re-exported for the engine's use in
/// building sink/entry seeds if it ever needs per-line granularity.
#[allow(dead_code)]
pub fn line_calls(code: &str) -> Vec<String> {
    call_names(code)
}
