//! A name-based, per-workspace call graph.
//!
//! Resolution is by simple name: a call site `foo(..)` / `x.foo(..)` /
//! `T::foo(..)` creates an edge to *every* function named `foo` in the
//! scanned set. That over-approximates (several `encode` functions
//! merge into one node-set) — which is the conservative direction for
//! reachability rules — except for a stop-list of ubiquitous names
//! (`new`, `push`, `len`, ...) that would otherwise connect everything
//! to everything through `Vec`/`HashMap`-shaped methods and drown the
//! graph in noise. Rules that need precision anchor on distinctive
//! names (sink and entry functions are chosen accordingly).

use crate::source::SourceFile;
use std::collections::{HashMap, HashSet};

/// The workspace crate-dependency DAG, used to prune name-resolution:
/// a call site in crate A can only resolve to functions in A itself or
/// in crates A (transitively) depends on. Without this, any `fn run`
/// anywhere makes every caller of a `run(..)` "reach" it, across crates
/// that are not even linked together.
#[derive(Default)]
pub struct CrateDeps {
    /// crate dir name → transitive dependency dir names (self excluded).
    map: HashMap<String, HashSet<String>>,
}

impl CrateDeps {
    /// Records one crate's manifest. Dependencies are recognized as
    /// lines starting with an in-workspace package name (`gar-<dir>`),
    /// which is all the precision the edge filter needs.
    pub fn add_manifest(&mut self, crate_dir: &str, manifest: &str) {
        let entry = self.map.entry(crate_dir.to_string()).or_default();
        for line in manifest.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("gar-") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                if !name.is_empty() && name != "compat" {
                    entry.insert(name);
                }
            }
        }
    }

    /// Transitively closes the recorded edges; call once after all
    /// manifests are added.
    pub fn close(&mut self) {
        let keys: Vec<String> = self.map.keys().cloned().collect();
        for k in &keys {
            let mut seen: HashSet<String> = HashSet::new();
            let mut queue: Vec<String> = self.map[k].iter().cloned().collect();
            while let Some(d) = queue.pop() {
                if seen.insert(d.clone()) {
                    if let Some(next) = self.map.get(&d) {
                        queue.extend(next.iter().cloned());
                    }
                }
            }
            self.map.insert(k.clone(), seen);
        }
    }

    /// May code in `from_crate` call into `to_crate`? Crates without a
    /// recorded manifest (in-memory test fixtures) are permissive.
    fn allows(&self, from_crate: &str, to_crate: &str) -> bool {
        if from_crate == to_crate {
            return true;
        }
        match self.map.get(from_crate) {
            Some(deps) => deps.contains(to_crate),
            None => true,
        }
    }
}

/// The crate directory name a workspace-relative path belongs to
/// (`crates/serve/src/lib.rs` → `serve`); other layouts get `""`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Names too generic to resolve: they are idiomatic std-container or
/// constructor methods, so an edge through them says nothing about the
/// callee we actually care about.
const UBIQUITOUS: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "take",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "items",
    "raw",
    "read",
    "write",
    "flush",
    "lock",
    "send",
    "recv",
    "wait",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_string",
    "to_vec",
    "from",
    "into",
    "extend",
    "extend_from_slice",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "ok",
    "err",
    "min",
    "max",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "index",
    "deref",
    "deref_mut",
    "finish",
    "count",
    "sum",
    "collect",
    "clamp",
    "abs",
    "keys",
    "values",
    "drain",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "dedup",
    "retain",
    "resize",
    "reserve",
    "with_capacity",
    "join",
    "split",
    "trim",
    "parse",
    "start",
    "stop",
    "elapsed",
    "add",
    "observe",
    "span",
    "load",
    "store",
    "swap",
    "fetch_add",
];

/// A node in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative file the function is defined in.
    pub file: String,
    /// Simple name.
    pub name: String,
    /// 1-based line of the definition's opening header.
    pub start_line: usize,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Outgoing edges, by node index.
    edges: Vec<Vec<usize>>,
    /// Reverse edges, by node index.
    redges: Vec<Vec<usize>>,
    /// node index by (file, fn start line) for lookups from findings.
    by_site: HashMap<(String, usize), usize>,
}

impl CallGraph {
    /// Builds the graph over every function of every file. Test-region
    /// functions are included as nodes but never grown through (a test
    /// calling a sink must not taint the sink's other callers... and a
    /// panic in a test harness is fine), so edges from test fns are
    /// dropped.
    pub fn build(files: &[SourceFile], deps: &CrateDeps) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_site = HashMap::new();
        for sf in files {
            for f in &sf.fns {
                let idx = nodes.len();
                nodes.push(FnNode {
                    file: sf.rel.clone(),
                    name: f.name.clone(),
                    start_line: f.start_line,
                    in_test: f.in_test,
                });
                by_name.entry(f.name.as_str()).or_default().push(idx);
                by_site.insert((sf.rel.clone(), f.start_line), idx);
            }
        }
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut idx = 0;
        for sf in files {
            for f in &sf.fns {
                if !f.in_test {
                    for call in &f.calls {
                        if UBIQUITOUS.contains(&call.as_str()) {
                            continue;
                        }
                        if let Some(targets) = by_name.get(call.as_str()) {
                            for &t in targets {
                                if t != idx
                                    && deps.allows(crate_of(&sf.rel), crate_of(&nodes[t].file))
                                    && !edges[idx].contains(&t)
                                {
                                    edges[idx].push(t);
                                    redges[t].push(idx);
                                }
                            }
                        }
                    }
                }
                idx += 1;
            }
        }
        CallGraph {
            nodes,
            edges,
            redges,
            by_site,
        }
    }

    /// The node index for the function starting at `(file, line)`.
    pub fn node_at(&self, file: &str, start_line: usize) -> Option<usize> {
        self.by_site.get(&(file.to_string(), start_line)).copied()
    }

    /// Forward closure: every node reachable (by call edges) from the
    /// seed set, mapped to the *seed name* that first reached it — the
    /// witness reported in findings. Seeds map to themselves.
    pub fn reachable_from(&self, seeds: &[usize]) -> HashMap<usize, String> {
        self.closure(seeds, &self.edges)
    }

    /// Reverse closure: every node from which some seed is reachable,
    /// mapped to the seed name it reaches. Seeds map to themselves.
    pub fn reaching(&self, seeds: &[usize]) -> HashMap<usize, String> {
        self.closure(seeds, &self.redges)
    }

    fn closure(&self, seeds: &[usize], edges: &[Vec<usize>]) -> HashMap<usize, String> {
        let mut out: HashMap<usize, String> = HashMap::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for &s in seeds {
            if seen.insert(s) {
                out.insert(s, self.nodes[s].name.clone());
                queue.push(s);
            }
        }
        while let Some(n) = queue.pop() {
            let witness = out[&n].clone();
            for &m in &edges[n] {
                if seen.insert(m) {
                    out.insert(m, witness.clone());
                    queue.push(m);
                }
            }
        }
        out
    }

    /// Node indices satisfying a predicate — the usual way seed sets
    /// (sinks, entry points) are selected.
    pub fn select(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(n))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn graph(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let g = CallGraph::build(&parsed, &CrateDeps::default());
        (parsed, g)
    }

    #[test]
    fn cross_file_reachability() {
        let (_, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { middle(); }\nfn middle() { encode_payload(1); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn encode_payload(x: u32) -> u32 { x }\n",
            ),
        ]);
        let sinks = g.select(|n| n.name == "encode_payload");
        assert_eq!(sinks.len(), 1);
        let reaching = g.reaching(&sinks);
        let names: Vec<&str> = reaching.keys().map(|&i| g.nodes[i].name.as_str()).collect();
        assert!(
            names.contains(&"top") && names.contains(&"middle"),
            "{names:?}"
        );
        // The witness names the sink that makes the function tainted.
        let top = g.select(|n| n.name == "top")[0];
        assert_eq!(reaching[&top], "encode_payload");
    }

    #[test]
    fn ubiquitous_names_do_not_create_edges() {
        let (_, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn caller(v: &mut Vec<u32>) { v.push(1); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn push(x: u32) {}\n"),
        ]);
        let sinks = g.select(|n| n.name == "push");
        let reaching = g.reaching(&sinks);
        let caller = g.select(|n| n.name == "caller")[0];
        assert!(!reaching.contains_key(&caller));
    }

    #[test]
    fn test_fns_do_not_propagate() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "\
fn sink_fn() {}

#[cfg(test)]
mod tests {
    fn harness() {
        sink_fn();
    }
}
",
        )]);
        let sinks = g.select(|n| n.name == "sink_fn");
        let reaching = g.reaching(&sinks);
        let harness = g.select(|n| n.name == "harness")[0];
        assert!(!reaching.contains_key(&harness));
    }

    #[test]
    fn forward_closure_names_the_entry() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "fn handle_conn() { helper_a(); }\nfn helper_a() { helper_b(); }\nfn helper_b() {}\n",
        )]);
        let entries = g.select(|n| n.name == "handle_conn");
        let reach = g.reachable_from(&entries);
        let b = g.select(|n| n.name == "helper_b")[0];
        assert_eq!(reach[&b], "handle_conn");
    }
}
