//! A hand-rolled Rust lexer — just enough of the language to make
//! pattern-based rules sound: raw strings (`r#".."#`, any hash depth),
//! byte strings, char literals vs lifetimes, nested block comments, and
//! doc comments are all recognized, so nothing inside a literal or a
//! comment can ever match a rule pattern.
//!
//! The lexer produces two views of a file:
//!
//! * a flat [`Token`] stream (kind + text + 1-based start line), used by
//!   tests and anything that wants exact token boundaries;
//! * **sanitized code lines** — the source with comments replaced by a
//!   single space, string literals collapsed to `""`, and char literals
//!   collapsed to `' '`, everything else (including whitespace and
//!   braces) byte-for-byte intact. Line numbers are preserved exactly:
//!   sanitized line `i` corresponds to raw line `i`, with multi-line
//!   tokens contributing empty continuation lines. All line-oriented
//!   rule matching happens on this view.

/// What a token is. Literal *contents* are deliberately opaque — rules
/// must never see inside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also raw identifiers, `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// String literal: `".."`, `b".."`.
    Str,
    /// Raw string literal: `r".."`, `r#".."#`, `br#".."#`.
    RawStr,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal (integers, floats, any suffix).
    Num,
    /// Any single punctuation character.
    Punct,
    /// `// ..` (non-doc).
    LineComment,
    /// `/* .. */`, possibly nested (non-doc).
    BlockComment,
    /// `/// ..`, `//! ..`, `/** .. */`, `/*! .. */`.
    DocComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The exact source text of the token (comments and literals keep
    /// their full spelling here; only the sanitized view blanks them).
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: usize,
}

/// The result of lexing one file.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Sanitized code lines, parallel to the raw lines of the file.
    pub code_lines: Vec<String>,
}

pub fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    tokens: Vec<Token>,
    code_lines: Vec<String>,
    cur: String,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one raw char *inside a literal or comment* (not emitted
    /// to the sanitized view), keeping line accounting straight.
    fn eat_opaque(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.newline();
        }
        Some(c)
    }

    fn newline(&mut self) {
        self.line += 1;
        self.code_lines.push(std::mem::take(&mut self.cur));
    }

    fn push_token(&mut self, kind: TokenKind, start: usize, start_line: usize) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.tokens.push(Token {
            kind,
            text,
            line: start_line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        let kind = if text.starts_with("///") || text.starts_with("//!") {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        };
        self.tokens.push(Token {
            kind,
            text,
            line: start_line,
        });
        self.cur.push(' ');
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        // Placeholder goes on the *start* line; newlines inside the
        // comment flush `cur` as they are consumed.
        self.cur.push(' ');
        self.i += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (Some(_), _) => {
                    self.eat_opaque();
                }
                (None, _) => break, // unterminated; tolerate
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        let kind =
            if (text.starts_with("/**") && !text.starts_with("/**/")) || text.starts_with("/*!") {
                TokenKind::DocComment
            } else {
                TokenKind::BlockComment
            };
        self.tokens.push(Token {
            kind,
            text,
            line: start_line,
        });
    }

    /// A `"`-delimited string body (the opening quote is already known);
    /// handles escapes, including escaped quotes and multi-line strings.
    fn string_body(&mut self) {
        self.i += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated; tolerate
                Some('\\') => {
                    self.eat_opaque();
                    self.eat_opaque();
                }
                Some('"') => {
                    self.i += 1;
                    break;
                }
                Some(_) => {
                    self.eat_opaque();
                }
            }
        }
    }

    /// A raw string starting at the current `r` (or after `b`): consumes
    /// `r#*"` .. `"#*` with a matching hash count.
    fn raw_string_body(&mut self) {
        self.i += 1; // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.i += 1;
        loop {
            match self.peek(0) {
                None => break, // unterminated; tolerate
                Some('"') => {
                    // A close candidate: `"` followed by `hashes` hashes.
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.i += 1 + hashes;
                        break;
                    }
                    self.i += 1;
                }
                Some(_) => {
                    self.eat_opaque();
                }
            }
        }
    }

    fn char_literal(&mut self) {
        self.i += 1; // opening quote
        match self.peek(0) {
            Some('\\') => {
                self.i += 1;
                if self.peek(0) == Some('u') {
                    // `'\u{..}'`
                    while self.peek(0).is_some_and(|c| c != '}') {
                        self.i += 1;
                    }
                    self.i += 1; // `}`
                } else {
                    self.i += 1; // the escaped char
                }
            }
            Some(_) => self.i += 1,
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.i += 1;
        }
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.i += 1;
                self.newline();
                continue;
            }
            if c.is_whitespace() {
                self.cur.push(c);
                self.i += 1;
                continue;
            }
            let start = self.i;
            let start_line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    // Placeholder first: a multi-line literal flushes
                    // `cur` at each newline it swallows, so the blank
                    // stand-in must already be on the start line.
                    self.cur.push_str("\"\"");
                    self.string_body();
                    self.push_token(TokenKind::Str, start, start_line);
                }
                'r' | 'b' if self.is_string_prefix() => {
                    let is_char = c == 'b' && self.peek(1) == Some('\'');
                    self.cur.push_str(if is_char { "' '" } else { "\"\"" });
                    let kind = self.prefixed_literal();
                    self.push_token(kind, start, start_line);
                }
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_char) {
                        self.i += 1;
                    }
                    self.push_token(TokenKind::Ident, start, start_line);
                    let text: String = self.chars[start..self.i].iter().collect();
                    self.cur.push_str(&text);
                }
                c if c.is_ascii_digit() => {
                    while self.peek(0).is_some_and(is_ident_char)
                        || (self.peek(0) == Some('.')
                            && self.peek(1).is_some_and(|c| c.is_ascii_digit()))
                    {
                        self.i += 1;
                    }
                    self.push_token(TokenKind::Num, start, start_line);
                    let text: String = self.chars[start..self.i].iter().collect();
                    self.cur.push_str(&text);
                }
                '\'' => {
                    // Lifetime when followed by an identifier that is not
                    // immediately closed by a quote (`'a` vs `'a'`).
                    let is_lifetime =
                        self.peek(1).is_some_and(is_ident_start) && self.peek(2) != Some('\'');
                    if is_lifetime {
                        self.i += 1;
                        while self.peek(0).is_some_and(is_ident_char) {
                            self.i += 1;
                        }
                        self.push_token(TokenKind::Lifetime, start, start_line);
                        let text: String = self.chars[start..self.i].iter().collect();
                        self.cur.push_str(&text);
                    } else {
                        self.char_literal();
                        self.push_token(TokenKind::Char, start, start_line);
                        self.cur.push_str("' '");
                    }
                }
                c => {
                    self.i += 1;
                    self.push_token(TokenKind::Punct, start, start_line);
                    self.cur.push(c);
                }
            }
        }
        self.code_lines.push(self.cur);
        Lexed {
            tokens: self.tokens,
            code_lines: self.code_lines,
        }
    }

    /// At an `r` or `b`: does a string/char literal (rather than a plain
    /// identifier like `radius` or a raw identifier `r#type`) start here?
    fn is_string_prefix(&self) -> bool {
        match self.peek(0) {
            Some('r') => {
                // `r"`, `r#..#"` (raw string) — but `r#ident` is a raw
                // identifier, so the char after the hashes must be `"`.
                // `r"`, `r#..#"` (raw string); `r#ident` has an ident
                // char, not `"`, after its hashes.
                let mut k = 1;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                self.peek(k) == Some('"')
            }
            Some('b') => match self.peek(1) {
                Some('"') | Some('\'') => true,
                Some('r') => {
                    let mut k = 2;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    self.peek(k) == Some('"')
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Consumes a `r`/`b`-prefixed literal; returns its kind.
    fn prefixed_literal(&mut self) -> TokenKind {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), _) => {
                self.raw_string_body();
                TokenKind::RawStr
            }
            (Some('b'), Some('\'')) => {
                self.i += 1; // `b`
                self.char_literal();
                TokenKind::Char
            }
            (Some('b'), Some('"')) => {
                self.i += 1; // `b`
                self.string_body();
                TokenKind::Str
            }
            (Some('b'), Some('r')) => {
                self.i += 1; // `b`
                self.raw_string_body();
                TokenKind::RawStr
            }
            _ => unreachable!("is_string_prefix guarantees a literal"),
        }
    }
}

/// Lexes one file into tokens plus sanitized code lines.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
        code_lines: Vec::new(),
        cur: String::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    fn sanitized(src: &str) -> Vec<String> {
        lex(src).code_lines
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("fn foo(x: u32) {}"),
            vec![
                TokenKind::Ident, // fn
                TokenKind::Ident, // foo
                TokenKind::Punct, // (
                TokenKind::Ident, // x
                TokenKind::Punct, // :
                TokenKind::Ident, // u32
                TokenKind::Punct, // )
                TokenKind::Punct, // {
                TokenKind::Punct, // }
            ]
        );
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = sanitized(r#"let s = "cv.wait(x) /* not a comment */";"#);
        assert_eq!(lines, vec![r#"let s = "";"#.to_string()]);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let lines = sanitized(r###"let s = r#"quote " and .unwrap() inside"#; done();"###);
        assert_eq!(lines, vec![r#"let s = ""; done();"#.to_string()]);
        // Hash depth 2, with a `"#` inside that must not close it.
        let src = "let s = r##\"has \"# inside\"##; f();";
        assert_eq!(sanitized(src), vec!["let s = \"\"; f();".to_string()]);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = lex("let r#type = 1;").tokens;
        assert_eq!(toks[1].kind, TokenKind::Ident);
        // `r` then `#` then `type`: lexed as ident `r`, punct `#`,
        // ident `type` — adequate for our rules (never a string).
        assert!(toks.iter().all(|t| t.kind != TokenKind::RawStr));
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let src = "let s = \"line one\nline two\";\nlet t = 3;";
        let lines = sanitized(src);
        assert_eq!(
            lines,
            vec![
                "let s = \"\"".to_string(),
                ";".to_string(),
                "let t = 3;".to_string()
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner */ still comment */ b();";
        assert_eq!(sanitized(src), vec!["a();   b();".to_string()]);
    }

    #[test]
    fn multiline_block_comment_keeps_line_numbers() {
        let src = "a();\n/* one\n   two */\nb();";
        assert_eq!(
            sanitized(src),
            vec![
                "a();".to_string(),
                " ".to_string(),
                "".to_string(),
                "b();".to_string()
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a".to_string(), "'a".to_string()]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\n'", "'\\''", "'\\\\'", "'\\u{1F600}'", "b'x'"] {
            let toks = lex(&format!("let c = {src};")).tokens;
            assert!(
                toks.iter().any(|t| t.kind == TokenKind::Char),
                "{src}: {toks:?}"
            );
            // The trailing `;` must survive (the literal must not
            // swallow it).
            assert_eq!(toks.last().unwrap().text, ";", "{src}");
        }
    }

    #[test]
    fn static_lifetime() {
        let toks = lex("const S: &'static str = \"x\";").tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        assert_eq!(
            kinds(
                "/// doc\n//! inner\n// plain\n/** block doc */\n/*! inner block */\n/* plain */"
            ),
            vec![
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::LineComment,
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::BlockComment,
            ]
        );
    }

    #[test]
    fn line_comment_contents_never_reach_code_lines() {
        let lines = sanitized("real(); // cv.wait( and Ordering::Relaxed here");
        assert_eq!(lines, vec!["real();  ".to_string()]);
    }

    #[test]
    fn byte_strings_are_blanked() {
        assert_eq!(
            sanitized(r#"let b = b"payload .unwrap()"; f();"#),
            vec![r#"let b = ""; f();"#.to_string()]
        );
    }

    #[test]
    fn float_range_is_not_swallowed() {
        // `0..n` must lex as num, punct, punct, ident — not a float.
        let toks = lex("for i in 0..n {}").tokens;
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0") && texts.contains(&"n"), "{texts:?}");
    }

    #[test]
    fn token_lines_are_one_based_and_accurate() {
        let toks = lex("a\n\nb /* c\nd */ e").tokens;
        let at: Vec<(String, usize)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.clone(), t.line))
            .collect();
        assert_eq!(
            at,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 3),
                ("e".to_string(), 4)
            ]
        );
    }
}
