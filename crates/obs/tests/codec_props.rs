//! Property tests for the JSON codec and the `metrics.json` /
//! `BENCH_*.json` document shapes: arbitrary values must survive
//! `render ∘ parse` (and snapshots `to_json ∘ from_json`) exactly.
//!
//! These files are the machine-readable interface of the observability
//! layer — the bench gate re-reads its own baseline through this codec,
//! so any value the writer can emit must come back bit-identical.

use gar_obs::json::{self, Value};
use gar_obs::{HistogramSnapshot, MetricsSnapshot};
use proptest::prelude::*;

/// u64 values that survive the f64-backed number representation
/// (counters are rendered as integral f64s, exact below 2^53).
fn arb_u53() -> impl Strategy<Value = u64> {
    proptest::num::u64::ANY.prop_map(|n| n & ((1 << 53) - 1))
}

/// Metric-key-shaped strings plus escape-hostile characters: quotes,
/// backslashes, control bytes, and multi-byte UTF-8.
fn arb_key() -> impl Strategy<Value = String> {
    let palette = [
        'a', 'z', 'A', '0', '9', '.', '_', '{', '}', '=', ',', ' ', '"', '\\', '/', '\n', '\t',
        '\r', '\u{1}', '\u{1f}', '\u{7f}', 'µ', '階', '🦀',
    ];
    proptest::collection::vec(0usize..palette.len(), 1..12)
        .prop_map(move |ix| ix.into_iter().map(|i| palette[i]).collect())
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        (arb_u53(), arb_u53(), arb_u53(), arb_u53()),
        proptest::collection::vec((0usize..65, arb_u53()), 0..8),
    )
        .prop_map(|((count, sum, min, max), buckets)| HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets: buckets.into_iter().map(|(b, c)| (b as u8, c)).collect(),
        })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::btree_map(arb_key(), arb_u53(), 0..12),
        proptest::collection::btree_map(arb_key(), arb_histogram(), 0..6),
    )
        .prop_map(|(counters, histograms)| MetricsSnapshot {
            counters,
            histograms,
        })
}

/// Scalar JSON values, including floats derived from integer ratios
/// (the compat strategies have no float ranges; `Display` of any f64
/// re-parses to the same bits, which is exactly what the codec relies
/// on for the bench gate's `modeled_seconds`).
fn arb_scalar() -> impl Strategy<Value = Value> {
    (0usize..5, arb_u53(), 1u64..1_000_000, arb_key()).prop_map(|(tag, a, b, s)| match tag {
        0 => Value::Null,
        1 => Value::Bool(a % 2 == 0),
        2 => Value::Num(a as f64),
        3 => Value::Num(a as f64 / b as f64 - 1.5),
        _ => Value::Str(s),
    })
}

/// Nested documents, two levels deep: objects of arrays of scalars.
fn arb_doc() -> impl Strategy<Value = Value> {
    proptest::collection::vec(
        (
            arb_key(),
            proptest::collection::vec(arb_scalar(), 0..5),
            arb_scalar(),
        ),
        0..6,
    )
    .prop_map(|fields| {
        Value::Obj(
            fields
                .into_iter()
                .flat_map(|(k, arr, scalar)| {
                    [
                        (format!("{k}#arr"), Value::Arr(arr)),
                        (format!("{k}#val"), scalar),
                    ]
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn json_values_round_trip(doc in arb_doc()) {
        let rendered = doc.render();
        let reparsed = json::parse(&rendered)
            .unwrap_or_else(|e| panic!("render produced unparsable JSON `{rendered}`: {e}"));
        prop_assert_eq!(&reparsed, &doc);
        // Render is deterministic, so it is also a fixed point.
        prop_assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn metrics_snapshots_round_trip(snap in arb_snapshot()) {
        let rendered = snap.to_json();
        let reparsed = MetricsSnapshot::from_json(&rendered)
            .unwrap_or_else(|e| panic!("to_json produced unreadable metrics: {e}\n{rendered}"));
        prop_assert_eq!(&reparsed, &snap);
        prop_assert_eq!(reparsed.to_json(), rendered);
    }

    // The bench gate's file shape: a schema tag, run parameters, and an
    // entry list keyed `<alg>@<nodes>` with float values. Everything
    // the gate later reads back must survive the codec.
    #[test]
    fn bench_documents_round_trip(entries in proptest::collection::vec(
        (0usize..4, 1u64..64, arb_u53(), 1u64..1_000_000), 1..8))
    {
        let algs = ["NPGM", "HPGM", "H-HPGM", "H-HPGM-FGD"];
        let entry_values = entries
            .iter()
            .map(|&(alg, nodes, num, den)| {
                Value::Obj(vec![
                    ("key".into(), Value::Str(format!("{}@{nodes}", algs[alg]))),
                    ("metric".into(), Value::Str("modeled_seconds".into())),
                    ("value".into(), Value::Num(num as f64 / den as f64)),
                    ("wall_seconds".into(), Value::Num(num as f64 / 1e9)),
                ])
            })
            .collect();
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("gar-bench-v1".into())),
            ("minsup_pct".into(), Value::Num(1.0)),
            ("entries".into(), Value::Arr(entry_values)),
        ]);
        let reparsed = json::parse(&doc.render()).unwrap();
        prop_assert_eq!(&reparsed, &doc);

        // And the values the gate compares come back exactly.
        let parsed_entries = reparsed.get("entries").and_then(Value::as_arr).unwrap();
        for (entry, &(_, _, num, den)) in parsed_entries.iter().zip(&entries) {
            let v = entry.get("value").and_then(Value::as_f64).unwrap();
            prop_assert_eq!(v, num as f64 / den as f64);
        }
    }
}
