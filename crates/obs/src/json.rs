//! Minimal JSON writer and parser.
//!
//! The workspace deliberately has no serde (nothing can be fetched in
//! this build environment), but the observability layer must *round-trip*
//! its artifacts: `metrics.json` and `BENCH_*.json` are read back by the
//! bench gate and by property tests. This module implements exactly the
//! subset both sides need — objects, arrays, strings with standard
//! escapes, `f64` numbers, booleans, and null — with a recursive-descent
//! parser and a writer whose output is byte-deterministic for a given
//! [`Value`].
//!
//! Numbers are stored as `f64` and written with Rust's shortest
//! round-trip `Display`, so any `f64` (and any integer with magnitude
//! below 2^53) survives `parse ∘ render` exactly.

use std::fmt::Write as _;

/// A parsed JSON document. Object keys keep their textual order, so a
/// document written from sorted maps parses back into the same order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as an unsigned integer (exact for < 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with no whitespace. Deterministic: the same `Value`
    /// always yields the same bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        // Shortest round-trip representation; integral values print
        // without a fractional part ("3", not "3.0"), which is valid
        // JSON and parses back to the same f64.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // No surrogate-pair support: the writer never
                            // emits \u for characters above U+001F.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str,
                    // so boundaries are valid).
                    let rest = self.bytes.get(self.pos..).unwrap_or_default();
                    let tail = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let Some(c) = tail.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let span = self.bytes.get(start..self.pos).unwrap_or_default();
        let text = std::str::from_utf8(span).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn shortest_float_repr_round_trips() {
        for n in [0.1, 1.0 / 3.0, 1234.5678, f64::MAX, f64::MIN_POSITIVE] {
            let v = Value::Num(n);
            assert_eq!(parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::Num(1.0), Value::Null])),
            (
                "b \"quoted\"\n".into(),
                Value::Obj(vec![("x".into(), Value::Bool(true))]),
            ),
        ]);
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        // Byte-deterministic: render ∘ parse ∘ render is the identity.
        assert_eq!(parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = parse(" { \"k\" : [ 1 , \"a\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "aA\t"
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn control_characters_escape() {
        let v = Value::Str("\u{1}".into());
        assert_eq!(v.render(), "\"\\u0001\"");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
