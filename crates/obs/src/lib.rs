//! Observability for the cluster simulator: counters, histograms, and
//! span timers, with chrome-trace export and a JSON codec.
//!
//! The paper's argument is quantitative (Figures 13–16 are per-pass
//! times, per-node message volumes, and workload histograms), so every
//! layer of the simulator reports into one [`Obs`] handle:
//!
//! * **Counters** and **histograms** are keyed by a metric name plus up
//!   to three integer labels (`node`, `pass`, `peer`, …). They carry *no
//!   timestamps* — only counts — so `metrics.json` is byte-identical
//!   across same-seed runs by construction.
//! * **Spans** record wall-clock phases keyed by `(node, pass, phase)`
//!   and export in the chrome://tracing "trace event" format, one lane
//!   per node. Timing lives *only* in the trace file, never in metrics.
//!
//! A disabled handle (the default) is a `None` and every operation is a
//! branch-and-return no-op, so production paths pay nothing measurable
//! when observability is off.
//!
//! This crate is also the workspace's only sanctioned clock: the repo
//! lint (`cargo xtask lint`, rule `no-instant`) rejects `Instant::now()`
//! in any other crate, so ad-hoc timing must flow through [`Stopwatch`]
//! or spans and stays visible to the tooling.

pub mod json;

use json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Schema tag embedded in every `metrics.json`.
pub const METRICS_SCHEMA: &str = "gar-metrics-v1";

/// A label: name plus integer value. All labels in this workspace are
/// small non-negative integers (node ids, pass numbers, peer ids).
pub type Label = (&'static str, u64);

/// Internal metric key: name plus up to three labels, stored sorted by
/// label name so `("a",1),("b",2)` and `("b",2),("a",1)` collide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    labels: [Option<Label>; 3],
}

impl Key {
    fn new(name: &'static str, labels: &[Label]) -> Self {
        assert!(labels.len() <= 3, "metric {name}: at most 3 labels");
        let mut sorted: [Option<Label>; 3] = [None; 3];
        for (slot, l) in sorted.iter_mut().zip(labels.iter()) {
            *slot = Some(*l);
        }
        sorted.sort_by_key(|l| match l {
            // Sort populated slots first (by name), `None` last.
            Some((n, _)) => (0, *n),
            None => (1, ""),
        });
        Key {
            name,
            labels: sorted,
        }
    }

    /// `name{a=1,b=2}`, or bare `name` without labels. This string is
    /// the key used in `metrics.json`, chosen so a flat map stays both
    /// sorted and greppable.
    fn render(&self) -> String {
        let mut out = String::from(self.name);
        let mut first = true;
        for l in self.labels.iter().flatten() {
            out.push(if first { '{' } else { ',' });
            first = false;
            out.push_str(l.0);
            out.push('=');
            out.push_str(&l.1.to_string());
        }
        if !first {
            out.push('}');
        }
        out
    }
}

/// Power-of-two histogram: bucket `i` counts values whose bit length is
/// `i` (bucket 0 holds zeros). 65 buckets cover all of `u64`.
#[derive(Default, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u8, u64>,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = (64 - value.leading_zeros()) as u8;
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self.buckets.iter().map(|(k, v)| (*k, *v)).collect(),
        }
    }
}

/// Exported histogram state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `(bit_length, count)` pairs, ascending, absent buckets omitted.
    pub buckets: Vec<(u8, u64)>,
}

#[derive(Default)]
struct MetricsState {
    counters: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
}

/// One completed span, in microseconds since the handle's epoch.
struct SpanEvent {
    phase: &'static str,
    node: u64,
    pass: u64,
    ts_us: u64,
    dur_us: u64,
}

struct Inner {
    epoch: Instant,
    metrics: Mutex<MetricsState>,
    spans: Mutex<Vec<SpanEvent>>,
}

/// The observability handle. Cheap to clone (an `Option<Arc>`); the
/// default handle is disabled and every operation on it is a no-op.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// A recording handle. All clones share one registry.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                metrics: Mutex::new(MetricsState::default()),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op handle (same as `Obs::default()`).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name{labels}`. No-op when disabled.
    pub fn add(&self, name: &'static str, labels: &[Label], delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut m = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        *m.counters.entry(Key::new(name, labels)).or_insert(0) += delta;
    }

    /// Records one observation in the histogram `name{labels}`.
    pub fn observe(&self, name: &'static str, labels: &[Label], value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut m = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.histograms
            .entry(Key::new(name, labels))
            .or_default()
            .observe(value);
    }

    /// Opens a span for `phase` on `node` during `pass`; the span closes
    /// (and records) when the returned guard drops. When disabled the
    /// guard is inert and no clock is read.
    pub fn span(&self, node: u64, pass: u64, phase: &'static str) -> Span {
        Span {
            rec: self.inner.as_ref().map(|inner| SpanRec {
                inner: Arc::clone(inner),
                phase,
                node,
                pass,
                start: Instant::now(),
            }),
        }
    }

    /// A deterministic snapshot of every counter and histogram.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let m = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        for (k, v) in &m.counters {
            snap.counters.insert(k.render(), *v);
        }
        for (k, h) in &m.histograms {
            snap.histograms.insert(k.render(), h.snapshot());
        }
        snap
    }

    /// Renders all completed spans in the chrome://tracing "trace event"
    /// JSON format: one `pid`, one lane (`tid`) per node, complete
    /// (`"ph":"X"`) events carrying `pass` in `args`. Load the file via
    /// chrome://tracing or https://ui.perfetto.dev.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        if let Some(inner) = &self.inner {
            let mut spans = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
            // Stable order: by lane, then start time, then phase name.
            spans.sort_by(|a, b| (a.node, a.ts_us, a.phase).cmp(&(b.node, b.ts_us, b.phase)));
            let mut lanes: Vec<u64> = spans.iter().map(|s| s.node).collect();
            lanes.dedup();
            for node in lanes {
                events.push(Value::Obj(vec![
                    ("name".into(), Value::Str("thread_name".into())),
                    ("ph".into(), Value::Str("M".into())),
                    ("pid".into(), Value::Num(0.0)),
                    ("tid".into(), Value::Num(node as f64)),
                    (
                        "args".into(),
                        Value::Obj(vec![("name".into(), Value::Str(format!("node {node}")))]),
                    ),
                ]));
            }
            for s in spans.iter() {
                events.push(Value::Obj(vec![
                    ("name".into(), Value::Str(s.phase.into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::Num(s.ts_us as f64)),
                    ("dur".into(), Value::Num(s.dur_us as f64)),
                    ("pid".into(), Value::Num(0.0)),
                    ("tid".into(), Value::Num(s.node as f64)),
                    (
                        "args".into(),
                        Value::Obj(vec![("pass".into(), Value::Num(s.pass as f64))]),
                    ),
                ]));
            }
        }
        Value::Obj(vec![
            ("traceEvents".into(), Value::Arr(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
        .render()
    }
}

struct SpanRec {
    inner: Arc<Inner>,
    phase: &'static str,
    node: u64,
    pass: u64,
    start: Instant,
}

/// Guard returned by [`Obs::span`]; records the span on drop.
pub struct Span {
    rec: Option<SpanRec>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let dur_us = rec.start.elapsed().as_micros() as u64;
        let ts_us = rec
            .start
            .saturating_duration_since(rec.inner.epoch)
            .as_micros() as u64;
        let mut spans = rec.inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        spans.push(SpanEvent {
            phase: rec.phase,
            node: rec.node,
            pass: rec.pass,
            ts_us,
            dur_us,
        });
    }
}

/// The workspace's sanctioned wall-clock timer. Everything outside
/// `gar-obs` that needs elapsed time uses this (or a span) instead of
/// `Instant::now()` — enforced by the `no-instant` lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Flat, deterministic export of an [`Obs`] registry: counter and
/// histogram maps keyed by `name{label=value,…}` strings. This is the
/// in-memory form of `metrics.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of every counter whose key starts with `prefix` (use
    /// `"name{"` or a full key to avoid matching longer names).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// One counter's value, 0 when absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Serializes as `metrics.json`: schema tag plus sorted flat maps.
    /// Deterministic — same snapshot, same bytes.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(b, c)| Value::Arr(vec![Value::Num(*b as f64), Value::Num(*c as f64)]))
                    .collect();
                (
                    k.clone(),
                    Value::Obj(vec![
                        ("count".into(), Value::Num(h.count as f64)),
                        ("sum".into(), Value::Num(h.sum as f64)),
                        ("min".into(), Value::Num(h.min as f64)),
                        ("max".into(), Value::Num(h.max as f64)),
                        ("buckets".into(), Value::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(METRICS_SCHEMA.into())),
            ("counters".into(), Value::Obj(counters)),
            ("histograms".into(), Value::Obj(histograms)),
        ])
        .render()
    }

    /// Parses what [`MetricsSnapshot::to_json`] wrote.
    pub fn from_json(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        if doc.get("schema").and_then(Value::as_str) != Some(METRICS_SCHEMA) {
            return Err(format!("not a {METRICS_SCHEMA} document"));
        }
        let mut snap = MetricsSnapshot::default();
        if let Some(Value::Obj(fields)) = doc.get("counters") {
            for (k, v) in fields {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("counter {k}: not a u64"))?;
                snap.counters.insert(k.clone(), n);
            }
        }
        if let Some(Value::Obj(fields)) = doc.get("histograms") {
            for (k, v) in fields {
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("histogram {k}: bad field {name}"))
                };
                let mut h = HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    min: field("min")?,
                    max: field("max")?,
                    buckets: Vec::new(),
                };
                for pair in v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("histogram {k}: missing buckets"))?
                {
                    let pair = pair.as_arr().filter(|p| p.len() == 2);
                    let pair = pair.ok_or_else(|| format!("histogram {k}: bad bucket"))?;
                    let b = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("histogram {k}: bad bucket index"))?;
                    let c = pair[1]
                        .as_u64()
                        .ok_or_else(|| format!("histogram {k}: bad bucket count"))?;
                    h.buckets.push((b as u8, c));
                }
                snap.histograms.insert(k.clone(), h);
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.add("x", &[("node", 1)], 5);
        obs.observe("y", &[], 7);
        drop(obs.span(0, 1, "scan"));
        assert!(!obs.is_enabled());
        assert_eq!(obs.metrics(), MetricsSnapshot::default());
        let trace = obs.chrome_trace_json();
        assert!(trace.contains("\"traceEvents\":[]"), "{trace}");
    }

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let obs = Obs::enabled();
        // Label order must not matter.
        obs.add("net.bytes", &[("node", 1), ("peer", 2)], 10);
        obs.add("net.bytes", &[("peer", 2), ("node", 1)], 5);
        obs.add("net.bytes", &[], 1);
        let m = obs.metrics();
        assert_eq!(m.counter("net.bytes{node=1,peer=2}"), 15);
        assert_eq!(m.counter("net.bytes"), 1);
        assert_eq!(m.sum_prefix("net.bytes"), 16);
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.add("c", &[], 2);
        obs.add("c", &[], 3);
        assert_eq!(obs.metrics().counter("c"), 5);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let obs = Obs::enabled();
        for v in [0u64, 1, 1, 7, 8, u64::MAX] {
            obs.observe("h", &[("pass", 2)], v);
        }
        let m = obs.metrics();
        let h = &m.histograms["h{pass=2}"];
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        // 0 → bucket 0; 1,1 → bucket 1; 7 → bucket 3; 8 → bucket 4;
        // u64::MAX → bucket 64.
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (3, 1), (4, 1), (64, 1)]);
    }

    #[test]
    fn metrics_json_round_trips() {
        let obs = Obs::enabled();
        obs.add("a", &[("node", 0)], 1);
        obs.add("b", &[("node", 3), ("pass", 2), ("peer", 1)], 42);
        obs.observe("h", &[], 9);
        let snap = obs.metrics();
        let rendered = snap.to_json();
        let reparsed = MetricsSnapshot::from_json(&rendered).unwrap();
        assert_eq!(reparsed, snap);
        assert_eq!(reparsed.to_json(), rendered);
    }

    #[test]
    fn metrics_json_is_deterministic_and_timestamp_free() {
        let build = || {
            let obs = Obs::enabled();
            // Insertion order differs between the two runs; output must not.
            obs.add("z", &[("node", 1)], 1);
            obs.add("a", &[], 2);
            obs.metrics().to_json()
        };
        let first = build();
        assert_eq!(first, build());
        assert!(!first.contains("ts"), "metrics must carry no timestamps");
    }

    #[test]
    fn spans_export_as_chrome_trace() {
        let obs = Obs::enabled();
        {
            let _pass = obs.span(1, 2, "pass");
            let _scan = obs.span(1, 2, "scan");
        }
        drop(obs.span(0, 1, "exchange"));
        let trace = obs.chrome_trace_json();
        let doc = json::parse(&trace).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 lane-name metadata events (nodes 0 and 1) + 3 spans.
        assert_eq!(events.len(), 5);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 3);
        for s in &spans {
            assert!(s.get("ts").unwrap().as_u64().is_some());
            assert!(s.get("dur").unwrap().as_u64().is_some());
            assert_eq!(s.get("pid").unwrap().as_u64(), Some(0));
        }
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("exchange"));
        assert_eq!(spans[0].get("tid").unwrap().as_u64(), Some(0));
        let args = spans[0].get("args").unwrap();
        assert_eq!(args.get("pass").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
    }
}
