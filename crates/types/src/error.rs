//! Shared error type for the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the mining library and its substrates.
#[derive(Debug)]
pub enum Error {
    /// A classification hierarchy failed validation (cycle, duplicate
    /// parent, unknown item, ...).
    InvalidTaxonomy(String),
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// An I/O error from the storage substrate, with context.
    Io {
        /// What the storage layer was doing when the error occurred.
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A corrupt or truncated record was found while decoding a partition.
    Corrupt(String),
    /// A simulated cluster node panicked or disconnected.
    NodeFailure {
        /// Identifier of the failed node.
        node: usize,
        /// Human-readable description of the failure.
        reason: String,
    },
    /// The coordinator protocol was violated (e.g. a reduce with a
    /// mismatched number of contributions).
    Protocol(String),
    /// A collective operation was abandoned because a peer failed; the
    /// node id identifies the *first* poisoner, so a cascade of
    /// secondary failures still reports its root cause.
    Poisoned {
        /// Node that poisoned the run.
        node: usize,
    },
    /// A node exceeded its deadline waiting on a collective or a
    /// message, indicating a hung or unresponsive peer.
    Timeout {
        /// Node that observed the expired deadline (the victim, not
        /// necessarily the hung peer).
        node: usize,
        /// The operation that was waited on (`"barrier"`, `"recv"`, ...).
        op: String,
    },
}

impl Error {
    /// Convenience constructor wrapping an [`std::io::Error`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    /// Whether an operation that failed with this error may be retried.
    ///
    /// Transient faults — I/O hiccups and expired deadlines — are
    /// retryable; everything else (corruption, configuration problems,
    /// protocol violations, node failures) is a fatal property of the
    /// run and retrying would only repeat it.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Io { .. } | Error::Timeout { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTaxonomy(msg) => write!(f, "invalid taxonomy: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Io { context, source } => write!(f, "i/o error while {context}: {source}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Error::NodeFailure { node, reason } => {
                write!(f, "cluster node {node} failed: {reason}")
            }
            Error::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            Error::Poisoned { node } => {
                write!(f, "collective poisoned by node {node}: a peer failed")
            }
            Error::Timeout { node, op } => {
                write!(f, "cluster node {node} timed out waiting for {op}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::InvalidTaxonomy("item 3 has two parents".into());
        assert_eq!(e.to_string(), "invalid taxonomy: item 3 has two parents");
        let e = Error::NodeFailure {
            node: 7,
            reason: "worker thread panicked".into(),
        };
        assert_eq!(
            e.to_string(),
            "cluster node 7 failed: worker thread panicked"
        );
        let e = Error::Poisoned { node: 2 };
        assert_eq!(
            e.to_string(),
            "collective poisoned by node 2: a peer failed"
        );
        let e = Error::Timeout {
            node: 4,
            op: "barrier".into(),
        };
        assert_eq!(
            e.to_string(),
            "cluster node 4 timed out waiting for barrier"
        );
    }

    #[test]
    fn retryable_classification() {
        let io = Error::io("probe", std::io::Error::other("flaky"));
        assert!(io.is_retryable());
        assert!(Error::Timeout {
            node: 0,
            op: "recv".into()
        }
        .is_retryable());

        assert!(!Error::Corrupt("bad checksum".into()).is_retryable());
        assert!(!Error::InvalidConfig("zero nodes".into()).is_retryable());
        assert!(!Error::InvalidTaxonomy("cycle".into()).is_retryable());
        assert!(!Error::Protocol("mismatched reduce".into()).is_retryable());
        assert!(!Error::Poisoned { node: 1 }.is_retryable());
        assert!(!Error::NodeFailure {
            node: 1,
            reason: "panicked".into()
        }
        .is_retryable());
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = Error::io("reading partition 3", inner);
        assert!(e.to_string().contains("reading partition 3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
