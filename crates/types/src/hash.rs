//! An FxHash-style hasher for the hot candidate tables.
//!
//! Candidate support counting probes a hash table once per k-itemset per
//! transaction, which dominates the runtime of every algorithm in the paper.
//! The default SipHash 1-3 is collision-resistant but slow for short integer
//! keys; the Fx algorithm (a multiply-and-rotate mix used by rustc) is far
//! faster and adequate here because keys are small, dense item identifiers
//! under our control, not attacker-supplied data.
//!
//! Implemented locally instead of depending on `rustc-hash` to keep the
//! dependency set within the sanctioned list (see DESIGN.md §5).

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx mixing constant (golden-ratio derived, same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher state. One `u64` of rolling state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` with the Fx mix. Useful for hand-rolled partitioning
/// functions (e.g. assigning a candidate's root itemset to a node).
#[inline]
pub fn fx_hash_u64(value: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(value);
    h.finish()
}

/// Hash a slice of `u32` words (an itemset) with the Fx mix.
#[inline]
pub fn fx_hash_u32_slice(values: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &v in values {
        h.write_u32(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(fx_hash_u64(42), fx_hash_u64(42));
        assert_eq!(fx_hash_u32_slice(&[1, 2, 3]), fx_hash_u32_slice(&[1, 2, 3]));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a sanity check that the mix is not
        // the identity on small integers.
        let h: Vec<u64> = (0..64).map(fx_hash_u64).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn order_sensitive_for_slices() {
        assert_ne!(fx_hash_u32_slice(&[1, 2, 3]), fx_hash_u32_slice(&[3, 2, 1]));
    }

    #[test]
    fn byte_writes_match_chunked_path() {
        // write() must consume trailing bytes; two different-length inputs
        // sharing a prefix must hash differently.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hashmap_round_trip() {
        let mut m: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], u64::from(i));
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&vec![i, i + 1]), Some(&u64::from(i)));
        }
        assert_eq!(m.len(), 1000);
    }
}
