//! Core value types shared by every crate in the `gar` workspace.
//!
//! This crate is deliberately dependency-free. It provides:
//!
//! * [`ItemId`] — a dense `u32` identifier for an item in the universe
//!   `I = {i_1, ..., i_m}` of the paper;
//! * [`Itemset`] — a canonical (sorted, duplicate-free) set of items, the
//!   unit the Apriori family counts support for;
//! * [`FxHashMap`] / [`FxHashSet`] — hash containers using a fast
//!   FxHash-style integer hasher (the candidate tables sit on the hottest
//!   path of every algorithm, and the default SipHash is measurably slower
//!   for short integer keys);
//! * [`Error`] — the shared error type.

pub mod error;
pub mod hash;
pub mod item;
pub mod itemset;

pub use error::{Error, Result};
pub use hash::{fx_hash_u32_slice, fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use item::ItemId;
pub use itemset::Itemset;
