//! Dense item identifiers.

use std::fmt;

/// Identifier of an item in the universe `I = {i_1, ..., i_m}`.
///
/// Items are numbered densely from zero. Both leaf items (the things that
/// actually appear in raw transactions) and interior/root items of the
/// classification hierarchy are `ItemId`s — the taxonomy crate tells them
/// apart.
///
/// A `u32` is used rather than `usize` because candidate tables hold many
/// millions of itemsets, and halving key width measurably reduces memory
/// traffic (see the type-size guidance in the Rust performance book).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The identifier as an index usable for dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` code.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ItemId {
    #[inline]
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

impl From<ItemId> for u32 {
    #[inline]
    fn from(v: ItemId) -> Self {
        v.0
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let id = ItemId::from(17u32);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(u32::from(id), 17);
    }

    #[test]
    fn ordering_follows_raw_code() {
        assert!(ItemId(1) < ItemId(2));
        assert_eq!(ItemId(5), ItemId(5));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", ItemId(3)), "i3");
        assert_eq!(format!("{}", ItemId(3)), "3");
    }

    #[test]
    fn is_small() {
        assert_eq!(std::mem::size_of::<ItemId>(), 4);
        assert_eq!(std::mem::size_of::<Option<ItemId>>(), 8);
    }
}
