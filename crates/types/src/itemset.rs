//! Canonical itemsets.

use crate::item::ItemId;
use std::fmt;
use std::ops::Deref;

/// A canonical itemset: a sorted, duplicate-free sequence of [`ItemId`]s.
///
/// The Apriori family relies on a canonical order for the `L_{k-1} ⋈ L_{k-1}`
/// join and for hashing itemsets consistently across cluster nodes, so the
/// invariant (strictly increasing item codes) is enforced by construction.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// Builds an itemset from items that are already strictly increasing.
    ///
    /// # Panics
    /// In debug builds, panics when the input violates the invariant.
    #[inline]
    pub fn from_sorted(items: Vec<ItemId>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "itemset must be strictly increasing: {items:?}"
        );
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// Builds an itemset from arbitrary items, sorting and de-duplicating.
    pub fn from_unsorted(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// The single-item itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset {
            items: vec![item].into_boxed_slice(),
        }
    }

    /// A two-item itemset from (possibly unordered) distinct items.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn pair(a: ItemId, b: ItemId) -> Self {
        assert_ne!(a, b, "a pair itemset needs two distinct items");
        let items = if a < b { vec![a, b] } else { vec![b, a] };
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// Number of items (the `k` of a k-itemset).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the itemset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items, in strictly increasing order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// True when `item` is a member (binary search).
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// True when every member of `self` occurs in the sorted slice `other`.
    ///
    /// Both sides must be strictly increasing; the merge runs in
    /// `O(|self| + |other|)`.
    pub fn is_contained_in(&self, other: &[ItemId]) -> bool {
        let mut oi = other.iter();
        'outer: for &x in self.items.iter() {
            for &y in oi.by_ref() {
                match y.cmp(&x) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The itemset with the element at `idx` removed. Used when generating
    /// the `(k-1)`-subsets for the Apriori prune step and for rule
    /// derivation.
    pub fn without_index(&self, idx: usize) -> Itemset {
        let mut v = Vec::with_capacity(self.items.len() - 1);
        for (i, &it) in self.items.iter().enumerate() {
            if i != idx {
                v.push(it);
            }
        }
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// The union of two itemsets.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut v = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (self.items.iter().peekable(), other.items.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    use std::cmp::Ordering::*;
                    match x.cmp(&y) {
                        Less => {
                            v.push(x);
                            a.next();
                        }
                        Greater => {
                            v.push(y);
                            b.next();
                        }
                        Equal => {
                            v.push(x);
                            a.next();
                            b.next();
                        }
                    }
                }
                (Some(&&x), None) => {
                    v.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    v.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Itemset) -> Itemset {
        let v: Vec<ItemId> = self
            .items
            .iter()
            .copied()
            .filter(|it| !other.contains(*it))
            .collect();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// The raw `u32` codes, for hashing/serialization.
    pub fn raw_codes(&self) -> impl Iterator<Item = u32> + '_ {
        self.items.iter().map(|it| it.raw())
    }
}

impl Deref for Itemset {
    type Target = [ItemId];
    #[inline]
    fn deref(&self) -> &[ItemId] {
        &self.items
    }
}

impl<'a> IntoIterator for &'a Itemset {
    type Item = &'a ItemId;
    type IntoIter = std::slice::Iter<'a, ItemId>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<ItemId> for Itemset {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Itemset::from_unsorted(iter.into_iter().collect())
    }
}

impl fmt::Debug for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", it.raw())?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Convenience constructor used pervasively in tests: `iset![1, 2, 3]`.
#[macro_export]
macro_rules! iset {
    ($($x:expr),* $(,)?) => {
        $crate::Itemset::from_unsorted(vec![$($crate::ItemId($x)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn from_unsorted_canonicalizes() {
        let s = Itemset::from_unsorted(ids(&[3, 1, 2, 3, 1]));
        assert_eq!(s.items(), ids(&[1, 2, 3]).as_slice());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn pair_orders_items() {
        assert_eq!(Itemset::pair(ItemId(5), ItemId(2)), iset![2, 5]);
    }

    #[test]
    #[should_panic]
    fn pair_rejects_equal_items() {
        let _ = Itemset::pair(ItemId(1), ItemId(1));
    }

    #[test]
    fn contains_uses_membership() {
        let s = iset![1, 5, 9];
        assert!(s.contains(ItemId(5)));
        assert!(!s.contains(ItemId(4)));
    }

    #[test]
    fn containment_in_sorted_slice() {
        let s = iset![2, 4];
        assert!(s.is_contained_in(&ids(&[1, 2, 3, 4, 5])));
        assert!(s.is_contained_in(&ids(&[2, 4])));
        assert!(!s.is_contained_in(&ids(&[2, 3, 5])));
        assert!(!s.is_contained_in(&ids(&[4])));
        assert!(iset![].is_contained_in(&[]));
    }

    #[test]
    fn without_index_drops_exactly_one() {
        let s = iset![1, 2, 3];
        assert_eq!(s.without_index(0), iset![2, 3]);
        assert_eq!(s.without_index(1), iset![1, 3]);
        assert_eq!(s.without_index(2), iset![1, 2]);
    }

    #[test]
    fn union_and_difference() {
        let a = iset![1, 3, 5];
        let b = iset![2, 3, 6];
        assert_eq!(a.union(&b), iset![1, 2, 3, 5, 6]);
        assert_eq!(a.difference(&b), iset![1, 5]);
        assert_eq!(b.difference(&a), iset![2, 6]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(iset![1, 2] < iset![1, 3]);
        assert!(iset![1, 2] < iset![1, 2, 3]);
    }

    #[test]
    fn display_formats_braces() {
        assert_eq!(format!("{}", iset![1, 2]), "{1,2}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_items() -> impl Strategy<Value = Vec<ItemId>> {
        proptest::collection::vec(0u32..200, 0..12)
            .prop_map(|v| v.into_iter().map(ItemId).collect())
    }

    proptest! {
        #[test]
        fn canonical_invariant_holds(v in arb_items()) {
            let s = Itemset::from_unsorted(v);
            prop_assert!(s.items().windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn union_is_commutative(a in arb_items(), b in arb_items()) {
            let (a, b) = (Itemset::from_unsorted(a), Itemset::from_unsorted(b));
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn union_contains_both_sides(a in arb_items(), b in arb_items()) {
            let (a, b) = (Itemset::from_unsorted(a), Itemset::from_unsorted(b));
            let u = a.union(&b);
            prop_assert!(a.is_contained_in(u.items()));
            prop_assert!(b.is_contained_in(u.items()));
        }

        #[test]
        fn difference_disjoint_from_subtrahend(a in arb_items(), b in arb_items()) {
            let (a, b) = (Itemset::from_unsorted(a), Itemset::from_unsorted(b));
            let d = a.difference(&b);
            prop_assert!(d.iter().all(|&x| !b.contains(x)));
            // difference ∪ b ⊇ a
            prop_assert!(a.is_contained_in(d.union(&b).items()));
        }

        #[test]
        fn containment_matches_naive(a in arb_items(), b in arb_items()) {
            let sa = Itemset::from_unsorted(a);
            let sb = Itemset::from_unsorted(b);
            let naive = sa.iter().all(|x| sb.contains(*x));
            prop_assert_eq!(sa.is_contained_in(sb.items()), naive);
        }
    }
}
